"""The NSYNC IDS pipeline (paper Section VII, Fig. 7).

Wires the four components together: a dynamic synchronizer (DWM or DTW)
produces ``h_disp``; the comparator produces ``v_dist``; the discriminator
checks both against thresholds learned by one-class classification from
benign runs.

Typical usage::

    ids = NsyncIds(reference, DwmSynchronizer(UM3_DWM_PARAMS))
    ids.fit(benign_signals, r=0.3)
    verdict = ids.detect(observed_signal)
    if verdict.is_intrusion:
        stop_the_printer()
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Union

import numpy as np

from .. import obs
from ..obs import events
from ..signals.signal import Signal
from ..sync.base import SyncResult, Synchronizer
from .comparator import Comparator, DistanceFn
from .discriminator import (
    Detection,
    DetectionFeatures,
    Discriminator,
    Thresholds,
    detection_features,
)
from .occ import OneClassTrainer

__all__ = ["AnalysisResult", "NsyncIds"]


def _finite(value: float) -> Optional[float]:
    """float(value), or None when it would not survive strict JSON."""
    v = float(value)
    return v if math.isfinite(v) else None


@dataclass(frozen=True)
class AnalysisResult:
    """Everything NSYNC derives from one observed signal."""

    sync: SyncResult
    v_dist: np.ndarray
    features: DetectionFeatures

    @property
    def duration_mismatch(self) -> float:
        """Window-count deviation of the observed process vs the reference."""
        return self.features.duration_mismatch


class NsyncIds:
    """A complete NSYNC intrusion-detection system for one reference signal.

    Parameters
    ----------
    reference:
        The reference side-channel signal ``b``, recorded from (or simulated
        for) a known-benign printing process.
    synchronizer:
        Any :class:`~repro.sync.base.Synchronizer`; the paper evaluates
        :class:`~repro.sync.dwm.DwmSynchronizer` and
        :class:`~repro.sync.fastdtw.FastDtwSynchronizer`.
    metric:
        Vertical-distance metric (default the correlation distance).
    filter_window:
        Spike-suppression window for the discriminator (default 3).
    """

    def __init__(
        self,
        reference: Signal,
        synchronizer: Synchronizer,
        metric: Union[str, DistanceFn] = "correlation",
        filter_window: int = 3,
    ) -> None:
        self.reference = reference
        self.synchronizer = synchronizer
        self.comparator = Comparator(metric)
        self.filter_window = filter_window
        self.thresholds: Optional[Thresholds] = None

    # ------------------------------------------------------------------
    def analyze(self, observed: Signal) -> AnalysisResult:
        """Synchronize, compare, and featurize one observed signal."""
        with obs.trace("repro.core.pipeline.analyze"):
            with obs.trace("synchronize"):
                sync = self.synchronizer.synchronize(observed, self.reference)
            with obs.trace("compare"):
                v_dist = self.comparator.vertical_distances(
                    observed, self.reference, sync
                )
            with obs.trace("featurize"):
                mismatch = self._duration_mismatch(observed, sync)
                features = detection_features(
                    sync, v_dist, self.filter_window,
                    duration_mismatch=mismatch,
                )
        if events.enabled():
            self._emit_window_evidence(sync, features)
        return AnalysisResult(sync=sync, v_dist=v_dist, features=features)

    @staticmethod
    def _emit_window_evidence(
        sync: SyncResult, features: DetectionFeatures
    ) -> None:
        """One ``window_evidence`` event per synchronized window.

        The field names match :class:`StreamingNsyncIds`'s emission
        exactly, so batch and streaming runs produce comparable streams
        (asserted by the evidence-parity tests).
        """
        log = events.log()
        for i in range(sync.n_indexes):
            log.emit(
                "window_evidence",
                window=i,
                h_disp=float(sync.h_disp[i]),
                c_disp=float(features.c_disp[i]),
                h_dist_f=float(features.h_dist_filtered[i]),
                v_dist_f=float(features.v_dist_filtered[i]),
            )

    def _duration_mismatch(self, observed: Signal, sync: SyncResult) -> float:
        """Deviation between the observed and reference process lengths.

        Measured in analysis windows.  Covers both directions: the observed
        print ending early/late relative to the reference, and the
        synchronizer walking off the reference before the observation ended
        (both only happen under timing attacks or gross re-slicing).
        """
        if sync.mode == "window":
            n_obs = observed.n_windows(sync.n_win, sync.n_hop)
            n_ref = self.reference.n_windows(sync.n_win, sync.n_hop)
        else:
            n_obs = observed.n_samples
            n_ref = self.reference.n_samples
        return float(max(abs(n_obs - n_ref), n_obs - sync.n_indexes))

    def fit(self, benign_signals: Iterable[Signal], r: float = 0.3) -> Thresholds:
        """Learn the discriminator thresholds from benign runs (Eq. 23-28)."""
        trainer = OneClassTrainer(r=r)
        for signal in benign_signals:
            trainer.add_run(self.analyze(signal).features)
        self.thresholds = trainer.thresholds()
        return self.thresholds

    def detect(self, observed: Signal) -> Detection:
        """Full pipeline: analyze the signal and apply the discriminator.

        The returned verdict carries ``first_alarm_time`` (seconds into the
        print), derived from the synchronizer's window geometry.
        """
        if self.thresholds is None:
            raise RuntimeError("call fit() (or set thresholds) before detect()")
        analysis = self.analyze(observed)
        discriminator = Discriminator(self.thresholds, self.filter_window)
        with obs.trace("repro.core.pipeline.discriminate"):
            verdict = discriminator.detect_features(analysis.features)
        if verdict.first_alarm_index is not None:
            if analysis.sync.mode == "window":
                samples = verdict.first_alarm_index * analysis.sync.n_hop
            else:
                samples = verdict.first_alarm_index
            from dataclasses import replace as _replace

            verdict = _replace(
                verdict,
                first_alarm_time=samples / observed.sample_rate,
            )
        if events.enabled():
            self._emit_verdict(observed, analysis, verdict)
        return verdict

    def _emit_verdict(
        self,
        observed: Signal,
        analysis: AnalysisResult,
        verdict: Detection,
    ) -> None:
        """Alarm provenance: one ``alarm`` per fired sub-module (at its
        first offending window) plus the ``run_summary`` that carries the
        window geometry ``repro explain`` needs to map windows to time."""
        log = events.log()
        t = self.thresholds
        assert t is not None
        f = verdict.features
        sync = analysis.sync
        checks = (
            ("c_disp", f.c_disp, t.c_c),
            ("h_dist", f.h_dist_filtered, t.h_c),
            ("v_dist", f.v_dist_filtered, t.v_c),
        )
        for submodule, series, threshold in checks:
            hits = np.flatnonzero(np.asarray(series) > threshold)
            if hits.size:
                i = int(hits[0])
                time_s = (
                    i * sync.n_hop / observed.sample_rate
                    if sync.mode == "window"
                    else i / observed.sample_rate
                )
                log.emit(
                    "alarm",
                    window=i,
                    submodule=submodule,
                    value=float(np.asarray(series)[i]),
                    threshold=float(threshold),
                    time_s=float(time_s),
                )
        if verdict.duration_fired:
            log.emit(
                "alarm",
                window=int(f.c_disp.shape[0]),
                submodule="duration",
                value=float(f.duration_mismatch),
                threshold=float(t.d_c),
                time_s=float(observed.duration),
            )
        log.emit(
            "run_summary",
            is_intrusion=verdict.is_intrusion,
            fired=list(verdict.fired_submodules()),
            n_windows=int(sync.n_indexes),
            first_alarm_index=verdict.first_alarm_index,
            first_alarm_time=verdict.first_alarm_time,
            # inf (= sub-module disabled) is not valid strict JSON: map to
            # None so the JSONL sink stays loadable by non-Python tools.
            thresholds={
                "c_c": _finite(t.c_c), "h_c": _finite(t.h_c),
                "v_c": _finite(t.v_c), "d_c": _finite(t.d_c),
            },
            mode=sync.mode,
            n_win=int(sync.n_win),
            n_hop=int(sync.n_hop),
            sample_rate=float(observed.sample_rate),
        )
