"""The NSYNC IDS pipeline (paper Section VII, Fig. 7).

Wires the four components together: a dynamic synchronizer (DWM or DTW)
produces ``h_disp``; the comparator produces ``v_dist``; the discriminator
checks both against thresholds learned by one-class classification from
benign runs.

Typical usage::

    ids = NsyncIds(reference, DwmSynchronizer(UM3_DWM_PARAMS))
    ids.fit(benign_signals, r=0.3)
    verdict = ids.detect(observed_signal)
    if verdict.is_intrusion:
        stop_the_printer()
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..obs import events
from ..signals.signal import Signal
from ..sync.base import SyncResult, Synchronizer
from .comparator import Comparator, DistanceFn
from .discriminator import (
    Detection,
    DetectionFeatures,
    Discriminator,
    Thresholds,
    detection_features,
)
from .health import SENSOR_FAULT, ChannelHealth, SanitizePolicy, sanitize_signal
from .occ import OneClassTrainer

__all__ = ["AnalysisResult", "NsyncIds"]


def _finite(value: float) -> Optional[float]:
    """float(value), or None when it would not survive strict JSON."""
    v = float(value)
    return v if math.isfinite(v) else None


@dataclass(frozen=True)
class AnalysisResult:
    """Everything NSYNC derives from one observed signal."""

    sync: SyncResult
    v_dist: np.ndarray
    features: DetectionFeatures
    #: Channel-health verdict from the input-sanitization stage.
    health: Optional[ChannelHealth] = None
    #: Indexes of analysis windows whose input samples had to be repaired
    #: (NaN/inf); their evidence comes from sanitized data and is flagged
    #: via ``window_quarantined`` events.
    quarantined_windows: Tuple[int, ...] = ()

    @property
    def duration_mismatch(self) -> float:
        """Window-count deviation of the observed process vs the reference."""
        return self.features.duration_mismatch


class NsyncIds:
    """A complete NSYNC intrusion-detection system for one reference signal.

    Parameters
    ----------
    reference:
        The reference side-channel signal ``b``, recorded from (or simulated
        for) a known-benign printing process.
    synchronizer:
        Any :class:`~repro.sync.base.Synchronizer`; the paper evaluates
        :class:`~repro.sync.dwm.DwmSynchronizer` and
        :class:`~repro.sync.fastdtw.FastDtwSynchronizer`.
    metric:
        Vertical-distance metric (default the correlation distance).
    filter_window:
        Spike-suppression window for the discriminator (default 3).
    policy:
        Input-sanitization thresholds (see
        :class:`~repro.core.health.SanitizePolicy`).  ``None`` uses the
        defaults; pass ``SanitizePolicy(enabled=False)`` to disable the
        fail-closed sensor-fault verdict (non-finite samples are still
        repaired and health still reported).
    """

    def __init__(
        self,
        reference: Signal,
        synchronizer: Synchronizer,
        metric: Union[str, DistanceFn] = "correlation",
        filter_window: int = 3,
        policy: Optional[SanitizePolicy] = None,
    ) -> None:
        self.reference = reference
        self.synchronizer = synchronizer
        self.comparator = Comparator(metric)
        self.filter_window = filter_window
        self.policy = policy if policy is not None else SanitizePolicy()
        self.thresholds: Optional[Thresholds] = None

    # ------------------------------------------------------------------
    def analyze(self, observed: Signal) -> AnalysisResult:
        """Sanitize, synchronize, compare, and featurize one signal.

        Degenerate input (NaN/inf samples) is repaired before any
        detection math runs, so the returned evidence arrays are always
        finite; the affected windows are flagged as quarantined and the
        channel-health verdict rides along on the result.
        """
        with obs.trace("repro.core.pipeline.analyze"):
            with obs.trace("sanitize"):
                sanitized = sanitize_signal(observed, self.policy)
                clean = sanitized.signal
            with obs.trace("synchronize"):
                sync = self.synchronizer.synchronize(clean, self.reference)
            with obs.trace("compare"):
                v_dist = self.comparator.vertical_distances(
                    clean, self.reference, sync
                )
            with obs.trace("featurize"):
                mismatch = self._duration_mismatch(clean, sync)
                features = detection_features(
                    sync, v_dist, self.filter_window,
                    duration_mismatch=mismatch,
                )
            quarantined = self._quarantine_windows(
                sanitized.bad_samples, sync
            )
        if events.enabled():
            self._emit_window_evidence(sync, features)
        return AnalysisResult(
            sync=sync,
            v_dist=v_dist,
            features=features,
            health=sanitized.health,
            quarantined_windows=quarantined,
        )

    @staticmethod
    def _quarantine_windows(
        bad_samples: np.ndarray, sync: SyncResult
    ) -> Tuple[int, ...]:
        """Map repaired sample positions onto analysis-window indexes.

        Each affected window gets a ``window_quarantined`` event and bumps
        the ``repro.core.pipeline.quarantined_windows`` counter; the
        evidence itself stays in place (finite, computed from sanitized
        data) so the discriminator keeps its fail-closed bias.
        """
        if not bad_samples.any():
            return ()
        if sync.mode == "window":
            n_win, n_hop = sync.n_win, sync.n_hop
            quarantined = tuple(
                i for i in range(sync.n_indexes)
                if bad_samples[i * n_hop : i * n_hop + n_win].any()
            )
        else:
            quarantined = tuple(
                int(i)
                for i in np.flatnonzero(bad_samples[: sync.n_indexes])
            )
        if quarantined and obs.enabled():
            obs.counter("repro.core.pipeline.quarantined_windows").inc(
                len(quarantined)
            )
        if quarantined and events.enabled():
            log = events.log()
            for i in quarantined:
                if sync.mode == "window":
                    span = bad_samples[i * sync.n_hop : i * sync.n_hop + sync.n_win]
                    n_bad = int(np.count_nonzero(span))
                else:
                    n_bad = 1
                log.emit("window_quarantined", window=int(i), n_bad=n_bad)
        return quarantined

    @staticmethod
    def _emit_window_evidence(
        sync: SyncResult, features: DetectionFeatures
    ) -> None:
        """One ``window_evidence`` event per synchronized window.

        The field names match :class:`StreamingNsyncIds`'s emission
        exactly, so batch and streaming runs produce comparable streams
        (asserted by the evidence-parity tests).
        """
        log = events.log()
        for i in range(sync.n_indexes):
            log.emit(
                "window_evidence",
                window=i,
                h_disp=float(sync.h_disp[i]),
                c_disp=float(features.c_disp[i]),
                h_dist_f=float(features.h_dist_filtered[i]),
                v_dist_f=float(features.v_dist_filtered[i]),
            )

    def _duration_mismatch(self, observed: Signal, sync: SyncResult) -> float:
        """Deviation between the observed and reference process lengths.

        Measured in analysis windows.  Covers both directions: the observed
        print ending early/late relative to the reference, and the
        synchronizer walking off the reference before the observation ended
        (both only happen under timing attacks or gross re-slicing).
        """
        if sync.mode == "window":
            n_obs = observed.n_windows(sync.n_win, sync.n_hop)
            n_ref = self.reference.n_windows(sync.n_win, sync.n_hop)
        else:
            n_obs = observed.n_samples
            n_ref = self.reference.n_samples
        return float(max(abs(n_obs - n_ref), n_obs - sync.n_indexes))

    def fit(self, benign_signals: Iterable[Signal], r: float = 0.3) -> Thresholds:
        """Learn the discriminator thresholds from benign runs (Eq. 23-28).

        A training run that trips the sanitization stage's sensor-fault
        verdict is rejected outright — thresholds learned from a dark or
        NaN-flooded channel would be meaningless and silently permissive.
        """
        trainer = OneClassTrainer(r=r)
        for k, signal in enumerate(benign_signals):
            analysis = self.analyze(signal)
            if analysis.health is not None and analysis.health.sensor_fault:
                raise ValueError(
                    f"training run {k} failed input sanitization "
                    f"({', '.join(analysis.health.reasons)}); refusing to "
                    "learn thresholds from a faulty channel"
                )
            trainer.add_run(analysis.features)
        self.thresholds = trainer.thresholds()
        return self.thresholds

    def detect(self, observed: Signal) -> Detection:
        """Full pipeline: analyze the signal and apply the discriminator.

        The returned verdict carries ``first_alarm_time`` (seconds into the
        print), derived from the synchronizer's window geometry, plus the
        channel-health report of the sanitization stage.  A sensor-fault
        verdict is **fail-closed**: it raises the intrusion flag even when
        no content sub-module fired.
        """
        if self.thresholds is None:
            raise RuntimeError("call fit() (or set thresholds) before detect()")
        analysis = self.analyze(observed)
        discriminator = Discriminator(self.thresholds, self.filter_window)
        with obs.trace("repro.core.pipeline.discriminate"):
            verdict = discriminator.detect_features(analysis.features)
        if verdict.first_alarm_index is not None:
            if analysis.sync.mode == "window":
                samples = verdict.first_alarm_index * analysis.sync.n_hop
            else:
                samples = verdict.first_alarm_index
            verdict = replace(
                verdict,
                first_alarm_time=samples / observed.sample_rate,
            )
        health = analysis.health
        if health is not None:
            if health.sensor_fault:
                verdict = self._apply_sensor_fault(observed, analysis, verdict)
            verdict = replace(
                verdict,
                health={
                    **health.to_dict(),
                    "quarantined_windows": [
                        int(i) for i in analysis.quarantined_windows
                    ],
                },
            )
        if events.enabled():
            self._emit_verdict(observed, analysis, verdict)
        return verdict

    def _apply_sensor_fault(
        self,
        observed: Signal,
        analysis: AnalysisResult,
        verdict: Detection,
    ) -> Detection:
        """Fail closed: raise the alarm because the *sensor* went away."""
        health = analysis.health
        assert health is not None
        sync = analysis.sync
        start = min((s for s, _ in health.dark_spans), default=None)
        if start is None:
            # Non-finite flood without a single long dark run: anchor the
            # alarm at the first quarantined window instead.
            index = min(analysis.quarantined_windows, default=0)
        elif sync.mode == "window":
            index = min(start // sync.n_hop, max(sync.n_indexes - 1, 0))
        else:
            index = min(start, max(sync.n_indexes - 1, 0))
        samples = index * sync.n_hop if sync.mode == "window" else index
        time_s = samples / observed.sample_rate
        if obs.enabled():
            obs.counter("repro.core.pipeline.sensor_faults").inc()
        if events.enabled():
            log = events.log()
            log.emit(
                "sensor_fault",
                reason=",".join(health.reasons),
                window=int(index),
                time_s=float(time_s),
                longest_dark_s=float(health.longest_dark_s),
            )
            log.emit(
                "alarm",
                window=int(index),
                submodule=SENSOR_FAULT,
                value=float(health.longest_dark_s),
                threshold=float(self.policy.max_dark_s),
                time_s=float(time_s),
            )
        first = verdict.first_alarm_index
        first = index if first is None else min(first, index)
        first_time = (
            (first * sync.n_hop if sync.mode == "window" else first)
            / observed.sample_rate
        )
        return replace(
            verdict,
            is_intrusion=True,
            sensor_fault_fired=True,
            first_alarm_index=int(first),
            first_alarm_time=first_time,
        )

    def _emit_verdict(
        self,
        observed: Signal,
        analysis: AnalysisResult,
        verdict: Detection,
    ) -> None:
        """Alarm provenance: one ``alarm`` per fired sub-module (at its
        first offending window) plus the ``run_summary`` that carries the
        window geometry ``repro explain`` needs to map windows to time."""
        log = events.log()
        t = self.thresholds
        assert t is not None
        f = verdict.features
        sync = analysis.sync
        checks = (
            ("c_disp", f.c_disp, t.c_c),
            ("h_dist", f.h_dist_filtered, t.h_c),
            ("v_dist", f.v_dist_filtered, t.v_c),
        )
        for submodule, series, threshold in checks:
            hits = np.flatnonzero(np.asarray(series) > threshold)
            if hits.size:
                i = int(hits[0])
                time_s = (
                    i * sync.n_hop / observed.sample_rate
                    if sync.mode == "window"
                    else i / observed.sample_rate
                )
                log.emit(
                    "alarm",
                    window=i,
                    submodule=submodule,
                    value=float(np.asarray(series)[i]),
                    threshold=float(threshold),
                    time_s=float(time_s),
                )
        if verdict.duration_fired:
            log.emit(
                "alarm",
                window=int(f.c_disp.shape[0]),
                submodule="duration",
                value=float(f.duration_mismatch),
                threshold=float(t.d_c),
                time_s=float(observed.duration),
            )
        log.emit(
            "run_summary",
            is_intrusion=verdict.is_intrusion,
            fired=list(verdict.fired_submodules()),
            n_windows=int(sync.n_indexes),
            first_alarm_index=verdict.first_alarm_index,
            first_alarm_time=verdict.first_alarm_time,
            # inf (= sub-module disabled) is not valid strict JSON: map to
            # None so the JSONL sink stays loadable by non-Python tools.
            thresholds={
                "c_c": _finite(t.c_c), "h_c": _finite(t.h_c),
                "v_c": _finite(t.v_c), "d_c": _finite(t.d_c),
            },
            mode=sync.mode,
            n_win=int(sync.n_win),
            n_hop=int(sync.n_hop),
            sample_rate=float(observed.sample_rate),
        )
