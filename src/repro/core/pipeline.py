"""The NSYNC IDS pipeline (paper Section VII, Fig. 7).

Wires the four components together: a dynamic synchronizer (DWM or DTW)
produces ``h_disp``; the comparator produces ``v_dist``; the discriminator
checks both against thresholds learned by one-class classification from
benign runs.

Typical usage::

    ids = NsyncIds(reference, DwmSynchronizer(UM3_DWM_PARAMS))
    ids.fit(benign_signals, r=0.3)
    verdict = ids.detect(observed_signal)
    if verdict.is_intrusion:
        stop_the_printer()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Union

import numpy as np

from .. import obs
from ..signals.signal import Signal
from ..sync.base import SyncResult, Synchronizer
from .comparator import Comparator, DistanceFn
from .discriminator import (
    Detection,
    DetectionFeatures,
    Discriminator,
    Thresholds,
    detection_features,
)
from .occ import OneClassTrainer

__all__ = ["AnalysisResult", "NsyncIds"]


@dataclass(frozen=True)
class AnalysisResult:
    """Everything NSYNC derives from one observed signal."""

    sync: SyncResult
    v_dist: np.ndarray
    features: DetectionFeatures

    @property
    def duration_mismatch(self) -> float:
        """Window-count deviation of the observed process vs the reference."""
        return self.features.duration_mismatch


class NsyncIds:
    """A complete NSYNC intrusion-detection system for one reference signal.

    Parameters
    ----------
    reference:
        The reference side-channel signal ``b``, recorded from (or simulated
        for) a known-benign printing process.
    synchronizer:
        Any :class:`~repro.sync.base.Synchronizer`; the paper evaluates
        :class:`~repro.sync.dwm.DwmSynchronizer` and
        :class:`~repro.sync.fastdtw.FastDtwSynchronizer`.
    metric:
        Vertical-distance metric (default the correlation distance).
    filter_window:
        Spike-suppression window for the discriminator (default 3).
    """

    def __init__(
        self,
        reference: Signal,
        synchronizer: Synchronizer,
        metric: Union[str, DistanceFn] = "correlation",
        filter_window: int = 3,
    ) -> None:
        self.reference = reference
        self.synchronizer = synchronizer
        self.comparator = Comparator(metric)
        self.filter_window = filter_window
        self.thresholds: Optional[Thresholds] = None

    # ------------------------------------------------------------------
    def analyze(self, observed: Signal) -> AnalysisResult:
        """Synchronize, compare, and featurize one observed signal."""
        with obs.trace("repro.core.pipeline.analyze"):
            with obs.trace("synchronize"):
                sync = self.synchronizer.synchronize(observed, self.reference)
            with obs.trace("compare"):
                v_dist = self.comparator.vertical_distances(
                    observed, self.reference, sync
                )
            with obs.trace("featurize"):
                mismatch = self._duration_mismatch(observed, sync)
                features = detection_features(
                    sync, v_dist, self.filter_window,
                    duration_mismatch=mismatch,
                )
        return AnalysisResult(sync=sync, v_dist=v_dist, features=features)

    def _duration_mismatch(self, observed: Signal, sync: SyncResult) -> float:
        """Deviation between the observed and reference process lengths.

        Measured in analysis windows.  Covers both directions: the observed
        print ending early/late relative to the reference, and the
        synchronizer walking off the reference before the observation ended
        (both only happen under timing attacks or gross re-slicing).
        """
        if sync.mode == "window":
            n_obs = observed.n_windows(sync.n_win, sync.n_hop)
            n_ref = self.reference.n_windows(sync.n_win, sync.n_hop)
        else:
            n_obs = observed.n_samples
            n_ref = self.reference.n_samples
        return float(max(abs(n_obs - n_ref), n_obs - sync.n_indexes))

    def fit(self, benign_signals: Iterable[Signal], r: float = 0.3) -> Thresholds:
        """Learn the discriminator thresholds from benign runs (Eq. 23-28)."""
        trainer = OneClassTrainer(r=r)
        for signal in benign_signals:
            trainer.add_run(self.analyze(signal).features)
        self.thresholds = trainer.thresholds()
        return self.thresholds

    def detect(self, observed: Signal) -> Detection:
        """Full pipeline: analyze the signal and apply the discriminator.

        The returned verdict carries ``first_alarm_time`` (seconds into the
        print), derived from the synchronizer's window geometry.
        """
        if self.thresholds is None:
            raise RuntimeError("call fit() (or set thresholds) before detect()")
        analysis = self.analyze(observed)
        discriminator = Discriminator(self.thresholds, self.filter_window)
        with obs.trace("repro.core.pipeline.discriminate"):
            verdict = discriminator.detect_features(analysis.features)
        if verdict.first_alarm_index is not None:
            if analysis.sync.mode == "window":
                samples = verdict.first_alarm_index * analysis.sync.n_hop
            else:
                samples = verdict.first_alarm_index
            from dataclasses import replace as _replace

            verdict = _replace(
                verdict,
                first_alarm_time=samples / observed.sample_rate,
            )
        return verdict
