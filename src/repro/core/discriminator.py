"""Discriminator: automatic intrusion detection (paper Section VII-B).

Three sub-modules examine the synchronizer/comparator outputs:

1. **CADHD** — the Cumulative Absolute Difference of the Horizontal
   Displacement (Eq. 17) exceeds ``c_c``: the synchronizer had to fight too
   hard, i.e. DSYNC effectively failed.
2. **Horizontal distance** — ``|h_disp[i]|`` exceeds ``h_c``: the process is
   running early/late beyond anything seen in training (a timing attack).
3. **Vertical distance** — ``v_dist[i]`` exceeds ``v_c``: the matched
   content itself differs (an amplitude/content attack).
4. **Duration** (reproduction extension) — the observed process produced a
   window count that deviates from the reference's by more than ``d_c``
   windows.  On the paper's physical printers a re-sliced print (e.g.
   Layer0.3) desynchronizes DWM long before it ends, so ``c_disp`` catches
   it; our simulated per-layer timing is ideal enough that an attack can end
   the print early while staying locked on.  A real-time IDS trivially
   observes "the print ended N windows early/late", so we expose it as an
   explicit, separately-thresholded check (disabled by ``d_c = inf``).

``h_dist`` and ``v_dist`` are first passed through a trailing minimum
filter (Eq. 21-22) so isolated time-noise spikes cannot trip a threshold.
An intrusion is declared as soon as *any* sub-module fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..signals.filters import trailing_min_filter
from ..sync.base import SyncResult

__all__ = ["Thresholds", "Detection", "Discriminator", "detection_features"]


@dataclass(frozen=True)
class Thresholds:
    """Critical values for the three sub-modules.

    ``c_c`` bounds CADHD, ``h_c`` the filtered horizontal distance, ``v_c``
    the filtered vertical distance.  ``inf`` disables a sub-module.
    """

    c_c: float
    h_c: float
    v_c: float
    d_c: float = float("inf")

    def __post_init__(self) -> None:
        for name in ("c_c", "h_c", "v_c", "d_c"):
            value = getattr(self, name)
            if not value >= 0:
                raise ValueError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class DetectionFeatures:
    """Per-index evidence the discriminator examines."""

    c_disp: np.ndarray
    h_dist_filtered: np.ndarray
    v_dist_filtered: np.ndarray
    duration_mismatch: float = 0.0


@dataclass(frozen=True)
class Detection:
    """Verdict of the discriminator for one printing process.

    ``first_alarm_index`` is the earliest window/point index at which any
    sub-module fired, or ``None`` for a benign verdict — a real-time
    deployment would stop the print at that index.
    """

    is_intrusion: bool
    cadhd_fired: bool
    h_dist_fired: bool
    v_dist_fired: bool
    duration_fired: bool
    first_alarm_index: Optional[int]
    features: DetectionFeatures
    #: Seconds into the print at which the first alarm fired (filled in by
    #: pipelines that know the window geometry; None for a benign verdict).
    first_alarm_time: Optional[float] = None
    #: Fail-closed sensor verdict (reproduction extension): the input
    #: sanitization stage found the channel dark or flooded with non-finite
    #: samples — the IDS cannot vouch for the print and alarms rather than
    #: staying silent.  See :mod:`repro.core.health`.
    sensor_fault_fired: bool = False
    #: JSON-safe channel-health report from the sanitization stage
    #: (:meth:`repro.core.health.ChannelHealth.to_dict` plus the quarantined
    #: window list); ``None`` for pipelines that skip sanitization.
    health: Optional[dict] = None

    def fired_submodules(self) -> tuple:
        names = []
        if self.cadhd_fired:
            names.append("c_disp")
        if self.h_dist_fired:
            names.append("h_dist")
        if self.v_dist_fired:
            names.append("v_dist")
        if self.duration_fired:
            names.append("duration")
        if self.sensor_fault_fired:
            names.append("sensor_fault")
        return tuple(names)

    def to_dict(self) -> dict:
        """JSON-safe dict of the full verdict, evidence arrays included.

        This is the payload of ``repro detect --json``: everything an
        operator (or a downstream SIEM) needs to act on the verdict —
        per-submodule outcomes, the first-alarm position in windows *and*
        seconds, and the complete evidence trajectories.
        """
        f = self.features
        return {
            "is_intrusion": self.is_intrusion,
            "fired_submodules": list(self.fired_submodules()),
            "cadhd_fired": self.cadhd_fired,
            "h_dist_fired": self.h_dist_fired,
            "v_dist_fired": self.v_dist_fired,
            "duration_fired": self.duration_fired,
            "sensor_fault_fired": self.sensor_fault_fired,
            "first_alarm_index": self.first_alarm_index,
            "first_alarm_time": self.first_alarm_time,
            "health": self.health,
            "n_windows": int(f.c_disp.shape[0]),
            "features": {
                "c_disp": np.asarray(f.c_disp, dtype=float).tolist(),
                "h_dist_filtered": np.asarray(
                    f.h_dist_filtered, dtype=float
                ).tolist(),
                "v_dist_filtered": np.asarray(
                    f.v_dist_filtered, dtype=float
                ).tolist(),
                "duration_mismatch": float(f.duration_mismatch),
            },
        }


def detection_features(
    sync: SyncResult,
    v_dist: np.ndarray,
    filter_window: int = 3,
    duration_mismatch: float = 0.0,
) -> DetectionFeatures:
    """Compute the evidence arrays from raw synchronizer output."""
    v_dist = np.asarray(v_dist, dtype=np.float64)
    return DetectionFeatures(
        c_disp=sync.cadhd(),
        h_dist_filtered=trailing_min_filter(sync.h_dist, filter_window),
        v_dist_filtered=trailing_min_filter(v_dist, filter_window),
        duration_mismatch=float(duration_mismatch),
    )


class Discriminator:
    """Applies the three threshold checks of Section VII-B.

    Parameters
    ----------
    thresholds:
        The critical values, normally learned via
        :class:`repro.core.occ.OneClassTrainer`.
    filter_window:
        Size of the trailing minimum filter (the paper uses 3).
    """

    def __init__(self, thresholds: Thresholds, filter_window: int = 3) -> None:
        if filter_window < 1:
            raise ValueError(f"filter_window must be >= 1, got {filter_window}")
        self.thresholds = thresholds
        self.filter_window = filter_window

    def detect(
        self,
        sync: SyncResult,
        v_dist: np.ndarray,
        duration_mismatch: float = 0.0,
    ) -> Detection:
        """Run all sub-modules and combine their verdicts."""
        features = detection_features(
            sync, v_dist, self.filter_window, duration_mismatch
        )
        return self.detect_features(features)

    def detect_features(self, features: DetectionFeatures) -> Detection:
        """Apply the thresholds to already-computed evidence."""
        t = self.thresholds

        c_hits = np.flatnonzero(features.c_disp > t.c_c)
        h_hits = np.flatnonzero(features.h_dist_filtered > t.h_c)
        v_hits = np.flatnonzero(features.v_dist_filtered > t.v_c)
        duration_fired = features.duration_mismatch > t.d_c

        first: Optional[int] = None
        for hits in (c_hits, h_hits, v_hits):
            if hits.size:
                first = hits[0] if first is None else min(first, int(hits[0]))
        if duration_fired and first is None:
            # A duration violation is only observable once one signal ends.
            first = int(features.c_disp.shape[0])
        return Detection(
            is_intrusion=first is not None,
            cadhd_fired=bool(c_hits.size),
            h_dist_fired=bool(h_hits.size),
            v_dist_fired=bool(v_hits.size),
            duration_fired=bool(duration_fired),
            first_alarm_index=int(first) if first is not None else None,
            features=features,
        )
