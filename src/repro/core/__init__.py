"""NSYNC core: comparator, discriminator, OCC training, IDS pipelines."""

from .comparator import Comparator, vertical_distances
from .discriminator import (
    Detection,
    DetectionFeatures,
    Discriminator,
    Thresholds,
    detection_features,
)
from .engine import (
    Alert,
    DetectionEngine,
    DetectorState,
    EngineResult,
    TRUNCATED_WINDOW_DISTANCE,
)
from .health import (
    SENSOR_FAULT,
    ChannelHealth,
    Sanitized,
    SanitizePolicy,
    constant_runs,
    sanitize_signal,
)
from .occ import OneClassTrainer, occ_threshold
from .pipeline import AnalysisResult, NsyncIds
from .streaming import StreamingNsyncIds
from .fusion import FusionDetection, MultiChannelNsyncIds

__all__ = [
    "Comparator",
    "vertical_distances",
    "DetectionEngine",
    "DetectorState",
    "EngineResult",
    "TRUNCATED_WINDOW_DISTANCE",
    "Detection",
    "DetectionFeatures",
    "Discriminator",
    "Thresholds",
    "detection_features",
    "SENSOR_FAULT",
    "ChannelHealth",
    "Sanitized",
    "SanitizePolicy",
    "constant_runs",
    "sanitize_signal",
    "OneClassTrainer",
    "occ_threshold",
    "AnalysisResult",
    "NsyncIds",
    "Alert",
    "StreamingNsyncIds",
    "FusionDetection",
    "MultiChannelNsyncIds",
]
