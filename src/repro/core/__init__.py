"""NSYNC core: comparator, discriminator, OCC training, IDS pipelines."""

from .comparator import Comparator, vertical_distances
from .discriminator import (
    Detection,
    DetectionFeatures,
    Discriminator,
    Thresholds,
    detection_features,
)
from .occ import OneClassTrainer, occ_threshold
from .pipeline import AnalysisResult, NsyncIds
from .streaming import Alert, StreamingNsyncIds
from .fusion import FusionDetection, MultiChannelNsyncIds

__all__ = [
    "Comparator",
    "vertical_distances",
    "Detection",
    "DetectionFeatures",
    "Discriminator",
    "Thresholds",
    "detection_features",
    "OneClassTrainer",
    "occ_threshold",
    "AnalysisResult",
    "NsyncIds",
    "Alert",
    "StreamingNsyncIds",
    "FusionDetection",
    "MultiChannelNsyncIds",
]
