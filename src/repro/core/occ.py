"""One-Class Classification threshold learning (paper Section VII-C).

Many prior IDSs either use binary classification (which requires examples of
malicious prints in advance) or magic-number thresholds.  NSYNC instead
learns each critical value from *benign runs only*: run the benign process
``M`` times, record the per-run maxima of the three evidence arrays, and set
each threshold to

    ``max_m(stat_m) + r * (max_m(stat_m) - min_m(stat_m))``        (Eq. 26-28)

``r`` trades FPR against FNR: larger ``r`` pushes the threshold further above
anything seen in training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .discriminator import DetectionFeatures, Thresholds

__all__ = ["occ_threshold", "OneClassTrainer"]


def occ_threshold(per_run_maxima: Sequence[float], r: float) -> float:
    """Apply Eq. (26)-(28) to the per-run maxima of one statistic.

    Raises :class:`ValueError` when any recorded maximum is non-finite: a
    NaN here would become a NaN threshold, after which *no* comparison ever
    fires — the IDS would silently fail open for the rest of its life.
    """
    if len(per_run_maxima) == 0:
        raise ValueError("need at least one training run")
    if r < 0:
        raise ValueError(f"r must be non-negative, got {r}")
    values = np.asarray(per_run_maxima, dtype=np.float64)
    # Check every value, not just the extremes: Python's max() silently
    # skips NaN (every comparison against it is False), so a poisoned
    # middle value would otherwise pass through unnoticed.
    if not np.isfinite(values).all():
        raise ValueError(
            f"training maxima contain non-finite values ({values.tolist()}); "
            "a NaN/inf threshold never fires"
        )
    high = float(values.max())
    low = float(values.min())
    return high + r * (high - low)


@dataclass
class OneClassTrainer:
    """Accumulates benign-run evidence and produces :class:`Thresholds`.

    Feed one :class:`DetectionFeatures` per benign training run via
    :meth:`add_run`, then call :meth:`thresholds`.
    """

    r: float = 0.3

    def __post_init__(self) -> None:
        if self.r < 0:
            raise ValueError(f"r must be non-negative, got {self.r}")
        self._c_maxima: List[float] = []
        self._h_maxima: List[float] = []
        self._v_maxima: List[float] = []
        self._d_values: List[float] = []

    @property
    def n_runs(self) -> int:
        """Number of benign runs seen so far (the paper's ``M``)."""
        return len(self._c_maxima)

    def add_run(self, features: DetectionFeatures) -> None:
        """Record the per-run maxima (Eq. 23-25) of one benign run.

        The horizontal/vertical arrays are assumed already filtered, which
        :func:`repro.core.discriminator.detection_features` guarantees.
        Non-finite evidence is rejected outright: a single NaN sample that
        survived into a training run would otherwise poison every learned
        threshold (``NaN > threshold`` is always ``False`` — the IDS fails
        open), so the poisoned run must fail loudly at ingestion time.
        """
        for name, values in (
            ("c_disp", features.c_disp),
            ("h_dist_filtered", features.h_dist_filtered),
            ("v_dist_filtered", features.v_dist_filtered),
            ("duration_mismatch", features.duration_mismatch),
        ):
            arr = np.asarray(values, dtype=np.float64)
            if arr.size and not np.isfinite(arr).all():
                raise ValueError(
                    f"training evidence {name!r} contains non-finite values; "
                    "refusing to learn a threshold that can never fire "
                    "(sanitize the run or drop it from the training set)"
                )
        self._c_maxima.append(_safe_max(features.c_disp))
        self._h_maxima.append(_safe_max(features.h_dist_filtered))
        self._v_maxima.append(_safe_max(features.v_dist_filtered))
        self._d_values.append(float(features.duration_mismatch))

    def thresholds(self, r: Optional[float] = None) -> Thresholds:
        """Learn the critical values from all recorded runs."""
        if self.n_runs == 0:
            raise ValueError("no training runs recorded")
        r = self.r if r is None else r
        # The duration statistic is integer-valued (window counts), so give
        # it one window of slack on top of the OCC rule.
        return Thresholds(
            c_c=occ_threshold(self._c_maxima, r),
            h_c=occ_threshold(self._h_maxima, r),
            v_c=occ_threshold(self._v_maxima, r),
            d_c=occ_threshold(self._d_values, r) + 1.0,
        )


def _safe_max(values: np.ndarray) -> float:
    """Max of an array, 0 for an empty one (a run that produced no windows)."""
    values = np.asarray(values)
    return float(values.max()) if values.size else 0.0
