"""Detection workers: one ordered engine table per shard.

A shard is the unit of ordering *and* of failure:

* **Ordering** — every stream maps to exactly one shard via
  ``crc32(stream_id) % n_shards`` (``zlib.crc32``, not ``hash()``, which
  is salted per process), and each shard is a **single-worker**
  ``ProcessPoolExecutor``, so all of a printer's chunks execute serially
  on one worker in submission order.  Checkpoint snapshots are submitted
  through the same executor and therefore always observe engine state at
  a chunk boundary — never mid-push.
* **Failure isolation** — a SIGKILLed worker breaks only its own shard's
  executor.  The pool replaces the executor (fresh process, empty engine
  table) and raises :class:`ShardCrashed`; the server suspends the
  shard's streams and clients re-``open`` to resume from the last
  checkpoint.

``n_shards == 0`` is **inline mode**: the same :class:`EngineHost` logic
runs in-process with direct calls — no pickling, no subprocesses — used
by tests, single-core deployments, and as the apples-to-apples baseline
for the serve benchmark.  Inline engines register with the live
telemetry registry themselves (``DetectionEngine(stream_id=...)``);
process-mode workers run unregistered (their registry would be invisible
in the child) and the parent mirrors health rows from the stats each
call returns.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import time
import zlib
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from functools import partial
from typing import Any, Callable, Dict, List, Optional, TypeVar

import numpy as np

from ..core.engine import DetectionEngine, DetectorState
from .model import ServeModel

__all__ = ["EngineHost", "ShardCrashed", "ShardPool", "shard_of"]

T = TypeVar("T")


class ShardCrashed(RuntimeError):
    """A shard's worker process died; its streams must resume from
    checkpoint.  The pool has already replaced the executor."""

    def __init__(self, shard: int) -> None:
        super().__init__(f"shard {shard} worker process died")
        self.shard = shard


def shard_of(stream_id: str, n_shards: int) -> int:
    """Deterministic stream→shard mapping (stable across processes)."""
    if n_shards <= 1:
        return 0
    return zlib.crc32(stream_id.encode("utf-8")) % n_shards


class EngineHost:
    """The engine table one shard worker serves (single-threaded).

    All mutation happens through :meth:`open` / :meth:`chunk` /
    :meth:`close` / :meth:`drop`; callers guarantee serialization (the
    single-worker executor in process mode, the event loop in inline
    mode).  Return values are JSON-safe dicts — they double as the wire
    acknowledgement payloads.
    """

    def __init__(self, model: ServeModel, register_streams: bool) -> None:
        self.model = model
        self.register_streams = register_streams
        self.engines: Dict[str, DetectionEngine] = {}

    # ------------------------------------------------------------------
    def open(
        self, stream_id: str, state_doc: Optional[Dict[str, object]]
    ) -> Dict[str, object]:
        """Ensure a live engine for ``stream_id``.

        Reattaches to an already-live engine (connection churn), restores
        ``state_doc`` into a fresh engine when given, or starts from
        scratch.  A state doc the engine refuses (configuration mismatch
        — the model changed under the checkpoint) degrades to a fresh
        start with the reason reported, per the checkpoint contract.
        """
        live = self.engines.get(stream_id)
        if live is not None:
            return {
                "samples_seen": live.samples_seen,
                "resumed": True,
                "reattached": True,
            }
        engine = self.model.build_engine(
            stream_id=stream_id if self.register_streams else None
        )
        resumed = False
        reason: Optional[str] = None
        if state_doc is not None:
            try:
                engine.restore(DetectorState.from_dict(state_doc))
                resumed = True
            except ValueError as exc:
                reason = str(exc)
                engine = self.model.build_engine(
                    stream_id=stream_id if self.register_streams else None
                )
        self.engines[stream_id] = engine
        reply: Dict[str, object] = {
            "samples_seen": engine.samples_seen,
            "resumed": resumed,
            "reattached": False,
        }
        if reason is not None:
            reply["checkpoint_rejected"] = reason
        return reply

    def chunk(self, stream_id: str, samples: np.ndarray) -> Dict[str, object]:
        """Push one sample block; returns the ack payload + health stats."""
        engine = self.engines[stream_id]
        t0 = time.perf_counter()
        alerts = engine.push(samples)
        latency_s = time.perf_counter() - t0
        return {
            "samples_seen": engine.samples_seen,
            "alerts": [a.to_dict() for a in alerts],
            "n_indexes": engine.n_indexes,
            "n_quarantined": engine.n_quarantined,
            "sensor_fault": engine.sensor_fault_fired,
            "latency_s": latency_s,
        }

    def close(self, stream_id: str) -> Dict[str, object]:
        """Finalize the stream's engine and return the full verdict."""
        engine = self.engines.pop(stream_id)
        result = engine.finalize()
        detection = result.detection
        reply: Dict[str, object] = {
            "samples_seen": engine.samples_seen,
            "alerts": [a.to_dict() for a in result.alerts],
        }
        if detection is not None:
            reply["intrusion"] = detection.is_intrusion
            reply["result"] = detection.to_dict()
        return reply

    def drop(self, stream_id: str) -> bool:
        """Discard a live engine without finalizing (client restart)."""
        return self.engines.pop(stream_id, None) is not None

    def states(self) -> Dict[str, Dict[str, object]]:
        """``{stream_id: DetectorState.to_dict()}`` of every live engine."""
        return {
            stream_id: engine.state().to_dict()
            for stream_id, engine in self.engines.items()
        }

    def stream_ids(self) -> List[str]:
        return sorted(self.engines)


# ---------------------------------------------------------------------------
# Worker-process plumbing: one module-global host per worker, initialized
# once per (re)spawn.  Spawn (not fork) so a worker restarted after a
# crash is indistinguishable from a fresh one.
# ---------------------------------------------------------------------------
_HOST: Optional[EngineHost] = None


def _host() -> EngineHost:
    assert _HOST is not None, "worker used before _worker_init"
    return _HOST


def _worker_init(model_dir: str) -> None:
    global _HOST
    _HOST = EngineHost(ServeModel.from_dir(model_dir), register_streams=False)


def _worker_open(
    stream_id: str, state_doc: Optional[Dict[str, object]]
) -> Dict[str, object]:
    return _host().open(stream_id, state_doc)


def _worker_chunk(stream_id: str, samples: np.ndarray) -> Dict[str, object]:
    return _host().chunk(stream_id, samples)


def _worker_close(stream_id: str) -> Dict[str, object]:
    return _host().close(stream_id)


def _worker_drop(stream_id: str) -> bool:
    return _host().drop(stream_id)


def _worker_states() -> Dict[str, Dict[str, object]]:
    return _host().states()


def _worker_pid() -> int:
    return os.getpid()


class ShardPool:
    """The shard layer: inline (``n_shards == 0``) or process-backed.

    All async methods run on the caller's event loop; process-mode calls
    go through ``loop.run_in_executor`` so the loop stays responsive
    while a worker computes.  Inline mode calls the host directly —
    blocking, ordered by the single-threaded loop itself.
    """

    def __init__(
        self,
        model_dir: str,
        n_shards: int = 0,
        register_inline_streams: bool = True,
        model: Optional[ServeModel] = None,
        on_crash: Optional[Callable[[int], None]] = None,
    ) -> None:
        if n_shards < 0:
            raise ValueError(f"n_shards must be >= 0, got {n_shards}")
        self.model_dir = str(model_dir)
        self.n_shards = int(n_shards)
        #: Called exactly once per worker death (by whichever caller
        #: observes it first — a client chunk or the checkpoint sweep),
        #: before the corresponding :class:`ShardCrashed` is raised.
        self.on_crash = on_crash
        self._inline: Optional[EngineHost] = None
        self._executors: List[ProcessPoolExecutor] = []
        self._depth: List[int] = []
        self._gen: List[int] = []
        if self.n_shards == 0:
            self._inline = EngineHost(
                model if model is not None else ServeModel.from_dir(model_dir),
                register_streams=register_inline_streams,
            )
        else:
            self._mp = multiprocessing.get_context("spawn")
            self._executors = [
                self._make_executor() for _ in range(self.n_shards)
            ]
            self._depth = [0] * self.n_shards
            self._gen = [0] * self.n_shards

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._mp,
            initializer=_worker_init,
            initargs=(self.model_dir,),
        )

    # ------------------------------------------------------------------
    @property
    def inline(self) -> bool:
        return self._inline is not None

    def shard_of(self, stream_id: str) -> int:
        return shard_of(stream_id, self.n_shards)

    def queue_depth(self) -> int:
        """Calls submitted to workers and not yet completed."""
        return sum(self._depth)

    async def _call(
        self, shard: int, fn: Callable[..., T], *args: Any
    ) -> T:
        if self._inline is not None:
            return fn(*args)
        executor = self._executors[shard]
        gen = self._gen[shard]
        loop = asyncio.get_running_loop()
        self._depth[shard] += 1
        try:
            return await loop.run_in_executor(executor, partial(fn, *args))
        except BrokenExecutor:
            # Replace the dead worker exactly once per breakage: a burst
            # of in-flight calls all fail, but only the first observer of
            # this generation rebuilds the executor and fires the crash
            # hook.  The hook runs before the raise, with no intervening
            # await, so by the time anyone sees ShardCrashed the shard's
            # streams are already marked suspended — even when the first
            # observer is the checkpoint sweep, which swallows the
            # exception itself.
            if self._gen[shard] == gen:
                self._gen[shard] = gen + 1
                executor.shutdown(wait=False)
                self._executors[shard] = self._make_executor()
                if self.on_crash is not None:
                    self.on_crash(shard)
            raise ShardCrashed(shard) from None
        finally:
            self._depth[shard] -= 1

    # ------------------------------------------------------------------
    async def open(
        self, stream_id: str, state_doc: Optional[Dict[str, object]]
    ) -> Dict[str, object]:
        if self._inline is not None:
            return self._inline.open(stream_id, state_doc)
        return await self._call(
            self.shard_of(stream_id), _worker_open, stream_id, state_doc
        )

    async def chunk(
        self, stream_id: str, samples: np.ndarray
    ) -> Dict[str, object]:
        if self._inline is not None:
            return self._inline.chunk(stream_id, samples)
        return await self._call(
            self.shard_of(stream_id), _worker_chunk, stream_id, samples
        )

    async def close(self, stream_id: str) -> Dict[str, object]:
        if self._inline is not None:
            return self._inline.close(stream_id)
        return await self._call(
            self.shard_of(stream_id), _worker_close, stream_id
        )

    async def drop(self, stream_id: str) -> bool:
        if self._inline is not None:
            return self._inline.drop(stream_id)
        return await self._call(
            self.shard_of(stream_id), _worker_drop, stream_id
        )

    async def states(self, shard: int) -> Dict[str, Dict[str, object]]:
        """Every live state on one shard, snapshotted at a chunk boundary."""
        if self._inline is not None:
            return self._inline.states()
        return await self._call(shard, _worker_states)

    async def all_states(self) -> Dict[str, Dict[str, object]]:
        """Every live state across all shards (crashed shards skipped)."""
        if self._inline is not None:
            return self._inline.states()
        merged: Dict[str, Dict[str, object]] = {}
        for shard in range(self.n_shards):
            try:
                merged.update(await self.states(shard))
            except ShardCrashed:
                continue
        return merged

    async def pid(self, shard: int) -> int:
        """The shard worker's OS pid (inline mode: this process)."""
        if self._inline is not None:
            return os.getpid()
        return await self._call(shard, _worker_pid)

    def shutdown(self) -> None:
        """Stop every executor (idempotent; inline mode is a no-op)."""
        for executor in self._executors:
            executor.shutdown(wait=True)
