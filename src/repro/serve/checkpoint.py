"""Atomic on-disk persistence of live ``DetectorState`` snapshots.

One JSON file per stream under the store directory, written tmp +
``os.replace`` so a reader (or a restarted service) never observes a
torn checkpoint; a writer SIGKILLed mid-write leaves only a ``.tmp``
sibling, which loading ignores and the next successful save overwrites.

Loading is fail-soft by design: *any* malformed checkpoint — truncated
JSON, wrong schema, a missing field — is "checkpoint unusable, restart
the stream from scratch", reported via :class:`CheckpointWarning`, never
a crash.  The validation itself lives in ``DetectorState.from_dict``
(raises ``ValueError`` naming the offending field); this store only
decides what a failure means.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.engine import STATE_VERSION, DetectorState

__all__ = ["CHECKPOINT_SUFFIX", "CheckpointStore", "CheckpointWarning"]

#: Suffix of live checkpoint files (``<encoded stream id>.ckpt.json``).
CHECKPOINT_SUFFIX = ".ckpt.json"


class CheckpointWarning(UserWarning):
    """A checkpoint was unusable and the stream restarts from scratch."""


def _encode_stream_id(stream_id: str) -> str:
    """Filesystem-safe, collision-free encoding of a stream id.

    Alphanumerics plus ``._-`` pass through; every other rune becomes
    ``%XX`` (and ``%`` itself is escaped), so distinct ids never map to
    the same file and the common ``printer-07`` case stays readable.
    """
    out = []
    for ch in stream_id:
        if (ch.isalnum() and ch.isascii()) or ch in "._-":
            out.append(ch)
        else:
            out.extend(f"%{b:02x}" for b in ch.encode("utf-8"))
    return "".join(out)


class CheckpointStore:
    """Directory of per-stream ``DetectorState`` checkpoints."""

    def __init__(self, directory: Union[str, os.PathLike]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, stream_id: str) -> Path:
        return self.directory / (
            _encode_stream_id(stream_id) + CHECKPOINT_SUFFIX
        )

    # ------------------------------------------------------------------
    def save(self, stream_id: str, state_doc: Dict[str, object]) -> Path:
        """Atomically persist one stream's ``DetectorState.to_dict()``.

        The envelope records the raw ``stream_id`` (the filename is an
        encoding of it) and the state's ``samples_seen`` so operators can
        inspect resume cursors with ``jq`` without parsing engine state.
        """
        progress = state_doc.get("progress")
        samples_seen = (
            progress.get("samples_seen") if isinstance(progress, dict) else None
        )
        envelope = {
            "v": STATE_VERSION,
            "stream_id": stream_id,
            "samples_seen": samples_seen,
            "state": state_doc,
        }
        path = self.path(stream_id)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(envelope, separators=(",", ":")) + "\n")
        os.replace(tmp, path)
        return path

    def load(self, stream_id: str) -> Optional[Dict[str, object]]:
        """The stream's validated state doc, or ``None`` if unusable.

        ``None`` covers "no checkpoint" and every flavour of corruption;
        corruption additionally emits a :class:`CheckpointWarning` naming
        the problem so crash forensics can tell the two apart.
        """
        path = self.path(stream_id)
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            envelope = json.loads(raw)
            if not isinstance(envelope, dict):
                raise ValueError("checkpoint envelope must be a JSON object")
            state_doc = envelope.get("state")
            if not isinstance(state_doc, dict):
                raise ValueError("checkpoint envelope missing 'state' object")
            # Full structural validation; raises ValueError naming the field.
            DetectorState.from_dict(state_doc)
        except ValueError as exc:
            warnings.warn(
                f"unusable checkpoint {path}: {exc}; stream "
                f"{stream_id!r} restarts from scratch",
                CheckpointWarning,
                stacklevel=2,
            )
            return None
        return state_doc

    def samples_seen(self, stream_id: str) -> int:
        """The checkpointed resume cursor (0 when no usable checkpoint)."""
        doc = self.load(stream_id)
        if doc is None:
            return 0
        progress = doc["progress"]
        assert isinstance(progress, dict)
        return int(progress["samples_seen"])

    def delete(self, stream_id: str) -> bool:
        """Drop a finished stream's checkpoint; returns whether one existed."""
        path = self.path(stream_id)
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def stream_ids(self) -> List[str]:
        """Raw stream ids with a (possibly unusable) checkpoint on disk."""
        ids = []
        for path in sorted(self.directory.glob("*" + CHECKPOINT_SUFFIX)):
            try:
                envelope = json.loads(path.read_text())
                stream_id = envelope.get("stream_id")
            except (OSError, ValueError):
                continue
            if isinstance(stream_id, str):
                ids.append(stream_id)
        return ids
