"""Deadline-based replay pacing on the monotonic clock.

The naive way to replay a recorded signal "in real time" — sleep a fixed
``interval`` after pushing each chunk — drifts: every sleep adds the
chunk's *processing* time on top of the interval, so a long replay runs
slower than real time and inflates ``ingest_lag_s`` for no physical
reason (the ``repro detect --pace`` bug this module fixes).

:class:`Pacer` instead schedules absolute deadlines ``start + k *
interval`` on ``time.monotonic()`` and sleeps only the *remaining* time
to the next one (never negative).  Processing time is absorbed as long
as the loop body is faster than the interval on average; when the body
is persistently slower the pacer reports how far behind schedule it is
instead of silently stretching time.

Shared by the CLI's ``detect --pace`` loop (sync :meth:`Pacer.wait`) and
the asyncio load generator (:meth:`Pacer.async_wait`).
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

__all__ = ["Pacer"]


class Pacer:
    """Absolute-deadline scheduler: the k-th wait returns at
    ``start + k * interval_s``.

    The schedule starts at the first :meth:`wait` / :meth:`async_wait`
    call (not at construction), so setup cost is not counted against the
    first deadline.  ``interval_s == 0`` disables pacing: every wait
    returns immediately with zero delay.
    """

    def __init__(self, interval_s: float) -> None:
        if interval_s < 0:
            raise ValueError(f"interval_s must be >= 0, got {interval_s}")
        self.interval_s = float(interval_s)
        self._k = 0
        self._start: Optional[float] = None

    @property
    def ticks(self) -> int:
        """Number of deadlines consumed so far."""
        return self._k

    def next_delay(self) -> float:
        """Seconds until the next deadline (>= 0); advances the schedule.

        Deadlines are anchored to the schedule start, never to "now":
        a loop body that overruns one interval does not push every later
        deadline back — the pacer catches up by returning 0.0 until the
        replay is back on schedule.
        """
        now = time.monotonic()
        if self._start is None:
            self._start = now
        self._k += 1
        deadline = self._start + self._k * self.interval_s
        return max(0.0, deadline - now)

    def behind_s(self) -> float:
        """How far the replay is behind schedule right now (>= 0)."""
        if self._start is None or self.interval_s == 0.0:
            return 0.0
        deadline = self._start + self._k * self.interval_s
        return max(0.0, time.monotonic() - deadline)

    def wait(self) -> float:
        """Sleep until the next deadline; returns the slept seconds."""
        delay = self.next_delay()
        if delay > 0.0:
            time.sleep(delay)
        return delay

    async def async_wait(self) -> float:
        """Asyncio flavour of :meth:`wait` (yields even when on time)."""
        delay = self.next_delay()
        if delay > 0.0:
            await asyncio.sleep(delay)
        else:
            # Cooperative: a saturated loadgen must not starve the loop.
            await asyncio.sleep(0)
        return delay
