"""Fleet detection service: N printer streams over checkpointed engines.

This package is ROADMAP item 1 — the step from "library" to a long-running
ingest *service*.  The architecture follows the edge→server split of the
OctoPrint exemplar: printers (or the load generator standing in for them)
push side-channel sample chunks over a socket; the service owns detection.

Layout:

* :mod:`repro.serve.protocol` — the line-delimited JSON wire protocol
  (``open`` / ``chunk`` / ``close`` / ``ping`` requests, ``ok``/error
  replies carrying the ``samples_seen`` resume cursor).
* :mod:`repro.serve.model` — the on-disk model directory (reference
  signal + DWM params + learned thresholds) every worker loads, plus the
  deterministic demo fleet used by tests, CI, and benchmarks.
* :mod:`repro.serve.shard` — the detection workers: ``shards=0`` runs
  every engine in-process (tests, single-core); ``shards>=1`` runs one
  single-worker ``ProcessPoolExecutor`` per shard, keyed by
  ``crc32(stream_id) % shards`` so each printer's chunks stay ordered on
  one worker and a crashed shard takes down only its own streams.
* :mod:`repro.serve.checkpoint` — atomic ``DetectorState`` persistence
  (tmp + ``os.replace``) so a crashed shard resumes mid-run, including
  mid-dark-run, bit-identically.
* :mod:`repro.serve.server` — the asyncio front-end (TCP or unix socket)
  multiplexing connections over the shard pool, periodic checkpointing,
  and the service-level telemetry gauges.
* :mod:`repro.serve.loadgen` — the matching load-generator client:
  replays cached runs (or the synthetic demo fleet) as paced live
  traffic and reports p50/p99 ingest latency and streams/core.
* :mod:`repro.serve.pacing` — the deadline-based replay scheduler shared
  by ``repro detect --pace`` and the load generator.

``repro serve`` / ``repro loadgen`` are the CLI entry points; see
DESIGN.md "Fleet detection service" for protocol and resume guarantees.
"""

from .checkpoint import CheckpointStore
from .loadgen import LoadgenResult, run_loadgen, synth_streams
from .model import ServeModel, demo_model, demo_observed
from .pacing import Pacer
from .server import FleetServer
from .shard import ShardCrashed, ShardPool

__all__ = [
    "CheckpointStore",
    "FleetServer",
    "LoadgenResult",
    "Pacer",
    "ServeModel",
    "ShardCrashed",
    "ShardPool",
    "demo_model",
    "demo_observed",
    "run_loadgen",
    "synth_streams",
]
