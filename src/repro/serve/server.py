"""The asyncio ingest front-end of the fleet detection service.

One :class:`FleetServer` owns a listening socket (TCP or unix), a
:class:`~repro.serve.shard.ShardPool`, a
:class:`~repro.serve.checkpoint.CheckpointStore`, and the service-level
telemetry gauges.  Connections speak :mod:`repro.serve.protocol`; each
connection is handled serially (one request, one reply, in order), so a
client that opens one connection per printer gets per-stream chunk
ordering for free.

Resume guarantees:

* Checkpoints are taken at chunk boundaries (the snapshot call is
  serialized behind pushes on the stream's own shard executor) and
  written atomically, so a checkpoint is always a bit-exact prefix of
  the run.
* After a shard crash the server suspends that shard's streams; each
  client re-``open``s, the last usable checkpoint is restored into the
  replacement worker, and the ``open`` reply's ``samples_seen`` tells
  the client exactly where to resume pushing.  Replaying the identical
  samples from that cursor produces a bit-identical final verdict —
  including a crash mid-dark-run, whose tracker state rides in the
  checkpoint like everything else.
* A stream whose checkpoint is unusable (torn write plus a crash before
  the next one) restarts from scratch — reported, never crashing the
  service.

Health rows: in inline mode engines self-register with the process-wide
registry; in process mode the parent mirrors each worker's per-chunk
stats into its own registry rows, so one ``/metrics`` endpoint serves
the whole fleet either way.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Set, Union

from ..obs import telemetry
from .checkpoint import CheckpointStore
from .model import ServeModel
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode,
    error_reply,
    samples_to_array,
)
from .shard import ShardCrashed, ShardPool

__all__ = ["FleetServer", "StreamInfo"]


@dataclass
class StreamInfo:
    """The parent's bookkeeping row for one open stream."""

    stream_id: str
    shard: int
    #: Connection currently allowed to push (None after its socket died).
    owner: Optional[int]
    #: Next expected per-session chunk counter.
    next_seq: int = 0
    #: Engine cursor after the last acknowledged operation.
    samples_seen: int = 0
    #: False once the stream's shard crashed; the client must re-open.
    live: bool = True
    chunks: int = field(default=0)


class FleetServer:
    """A long-running multi-stream detection service.

    Parameters
    ----------
    model_dir:
        :class:`~repro.serve.model.ServeModel` directory every worker
        loads.
    checkpoint_dir:
        Where live ``DetectorState`` snapshots go.  ``None`` disables
        checkpointing (tests of the pure ingest path).
    shards:
        ``0`` = inline engines (single core); ``n >= 1`` = that many
        single-worker processes.
    checkpoint_interval_s:
        Period of the background checkpoint sweep.
    metrics_port:
        When given, start (or reuse) the process-wide telemetry endpoint
        on this port — the shared ``/metrics`` for every stream.
    """

    def __init__(
        self,
        model_dir: Union[str, Path],
        checkpoint_dir: Optional[Union[str, Path]] = None,
        shards: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[Union[str, Path]] = None,
        checkpoint_interval_s: float = 5.0,
        metrics_port: Optional[int] = None,
    ) -> None:
        if checkpoint_interval_s <= 0:
            raise ValueError(
                f"checkpoint_interval_s must be > 0, got "
                f"{checkpoint_interval_s}"
            )
        self.model_dir = Path(model_dir)
        self.model = ServeModel.from_dir(self.model_dir)
        self.shards = int(shards)
        self.host = host
        self.port = int(port)
        self.unix_path = Path(unix_path) if unix_path is not None else None
        self.checkpoint_interval_s = float(checkpoint_interval_s)
        self.metrics_port = metrics_port
        self.checkpoints: Optional[CheckpointStore] = (
            CheckpointStore(checkpoint_dir)
            if checkpoint_dir is not None
            else None
        )
        self.pool: Optional[ShardPool] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._ckpt_task: Optional[asyncio.Task] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._streams: Dict[str, StreamInfo] = {}
        self._next_conn = 0
        self._n_conns = 0
        self._stopping = False
        self._started_telemetry = False
        self._chunks_total = 0
        self._samples_total = 0
        self._checkpoints_total = 0
        self._crashes_total = 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket, start the shard pool + checkpoint sweep."""
        assert self._server is None, "start() may only be called once"
        self.pool = ShardPool(
            str(self.model_dir),
            n_shards=self.shards,
            model=self.model,
            on_crash=self._suspend_shard,
        )
        if self.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection,
                path=str(self.unix_path),
                limit=MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                host=self.host,
                port=self.port,
                limit=MAX_LINE_BYTES,
            )
            self.port = int(self._server.sockets[0].getsockname()[1])
        if self.checkpoints is not None:
            self._ckpt_task = asyncio.create_task(self._checkpoint_loop())
        if self.metrics_port is not None:
            telemetry.serve(port=self.metrics_port)
            self._started_telemetry = True
        telemetry.set_service_stats(self.service_stats)

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, final checkpoint."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn_tasks:
            await asyncio.gather(
                *tuple(self._conn_tasks), return_exceptions=True
            )
        if self._ckpt_task is not None:
            self._ckpt_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._ckpt_task
            self._ckpt_task = None
        await self.checkpoint_now()
        telemetry.clear_service_stats()
        if self._started_telemetry:
            telemetry.stop()
        if self.pool is not None:
            self.pool.shutdown()
        if self.unix_path is not None:
            with contextlib.suppress(OSError):
                self.unix_path.unlink()

    # ------------------------------------------------------------------
    def service_stats(self) -> Dict[str, float]:
        """The ``repro_serve_*`` gauge values (see obs.telemetry)."""
        pool = self.pool
        return {
            "live_streams": float(
                sum(1 for s in self._streams.values() if s.live)
            ),
            "streams": float(len(self._streams)),
            "connections": float(self._n_conns),
            "shards": float(self.shards),
            "shard_queue_depth": float(
                pool.queue_depth() if pool is not None else 0
            ),
            "chunks_total": float(self._chunks_total),
            "samples_total": float(self._samples_total),
            "checkpoints_total": float(self._checkpoints_total),
            "shard_crashes_total": float(self._crashes_total),
        }

    async def checkpoint_now(self) -> int:
        """Persist every live engine's state; returns streams written."""
        if self.checkpoints is None or self.pool is None:
            return 0
        states = await self.pool.all_states()
        for stream_id, doc in states.items():
            self.checkpoints.save(stream_id, doc)
        self._checkpoints_total += len(states)
        return len(states)

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.checkpoint_interval_s)
            with contextlib.suppress(Exception):
                await self.checkpoint_now()

    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        conn_id = self._next_conn
        self._next_conn += 1
        self._n_conns += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    writer.write(
                        encode(
                            error_reply(
                                "bad_request",
                                f"line exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                reply = await self._handle_line(conn_id, line)
                writer.write(encode(reply))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._n_conns -= 1
            for info in self._streams.values():
                if info.owner == conn_id:
                    info.owner = None
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_line(
        self, conn_id: int, line: bytes
    ) -> Dict[str, Any]:
        try:
            doc = decode_request(line)
        except ProtocolError as exc:
            return error_reply(exc.code, exc.message)
        op = doc["op"]
        if op == "ping":
            return {
                "ok": True,
                "op": "pong",
                "v": PROTOCOL_VERSION,
                "stats": self.service_stats(),
            }
        if self._stopping:
            return error_reply("shutting_down", "service is draining")
        stream_id = doc["stream_id"]
        try:
            if op == "open":
                return await self._handle_open(conn_id, stream_id, doc)
            if op == "chunk":
                return await self._handle_chunk(conn_id, stream_id, doc)
            return await self._handle_close(conn_id, stream_id)
        except ProtocolError as exc:
            return error_reply(
                exc.code, exc.message, stream_id=stream_id
            )
        except ShardCrashed as exc:
            # Streams were already suspended by the pool's on_crash hook
            # (exactly once per worker death, whoever observes it first).
            return error_reply(
                "shard_crashed",
                f"shard {exc.shard} died; re-open to resume from the "
                "last checkpoint",
                stream_id=stream_id,
                samples_seen=self._checkpoint_cursor(stream_id),
            )
        except LookupError:
            # The worker has no engine for a stream the parent thinks is
            # live: the worker was replaced under us.  Same client-facing
            # contract as a crash — re-open to resume from checkpoint.
            info = self._streams.get(stream_id)
            if info is not None:
                info.live = False
            return error_reply(
                "shard_crashed",
                "worker lost the stream's engine (restarted); re-open "
                "to resume from the last checkpoint",
                stream_id=stream_id,
                samples_seen=self._checkpoint_cursor(stream_id),
            )

    # ------------------------------------------------------------------
    def _checkpoint_cursor(self, stream_id: str) -> int:
        if self.checkpoints is None:
            return 0
        return self.checkpoints.samples_seen(stream_id)

    def _suspend_shard(self, shard: int) -> None:
        """A shard worker died: its streams must re-open to resume."""
        self._crashes_total += 1
        for info in self._streams.values():
            if info.shard == shard:
                info.live = False

    def _check_owner(
        self, conn_id: int, stream_id: str
    ) -> Optional[StreamInfo]:
        info = self._streams.get(stream_id)
        if info is not None and info.owner not in (None, conn_id):
            raise ProtocolError(
                "stream_busy",
                f"stream {stream_id!r} is owned by another live connection",
            )
        return info

    async def _handle_open(
        self, conn_id: int, stream_id: str, doc: Dict[str, Any]
    ) -> Dict[str, Any]:
        assert self.pool is not None
        rate = doc.get("sample_rate")
        if rate is not None and float(rate) != self.model.reference.sample_rate:
            raise ProtocolError(
                "bad_request",
                f"sample_rate {rate} does not match the model's "
                f"{self.model.reference.sample_rate}",
            )
        info = self._check_owner(conn_id, stream_id)
        if doc.get("restart"):
            await self.pool.drop(stream_id)
            if self.checkpoints is not None:
                self.checkpoints.delete(stream_id)
            self._streams.pop(stream_id, None)
            info = None
        state_doc = None
        if (
            (info is None or not info.live)
            and doc.get("resume", True)
            and self.checkpoints is not None
        ):
            state_doc = self.checkpoints.load(stream_id)
        ack = await self.pool.open(stream_id, state_doc)
        samples_seen = int(ack["samples_seen"])  # type: ignore[arg-type]
        fresh_row = info is None or not info.live
        self._streams[stream_id] = StreamInfo(
            stream_id=stream_id,
            shard=self.pool.shard_of(stream_id),
            owner=conn_id,
            next_seq=0,
            samples_seen=samples_seen,
            live=True,
        )
        if not self.pool.inline and fresh_row:
            telemetry.register_stream(
                stream_id, self.model.reference.sample_rate
            )
        reply: Dict[str, Any] = {
            "ok": True,
            "op": "open",
            "stream_id": stream_id,
            "resumed": bool(ack["resumed"]),
            "samples_seen": samples_seen,
        }
        if "checkpoint_rejected" in ack:
            reply["checkpoint_rejected"] = ack["checkpoint_rejected"]
        return reply

    async def _handle_chunk(
        self, conn_id: int, stream_id: str, doc: Dict[str, Any]
    ) -> Dict[str, Any]:
        assert self.pool is not None
        info = self._check_owner(conn_id, stream_id)
        if info is None:
            raise ProtocolError(
                "unknown_stream", f"stream {stream_id!r} is not open"
            )
        if not info.live:
            return error_reply(
                "shard_crashed",
                "stream suspended by a shard crash; re-open to resume",
                stream_id=stream_id,
                samples_seen=self._checkpoint_cursor(stream_id),
            )
        seq = doc["seq"]
        if seq != info.next_seq:
            raise ProtocolError(
                "bad_seq",
                f"expected seq {info.next_seq}, got {seq}",
            )
        samples = samples_to_array(doc.get("samples"))
        ack = await self.pool.chunk(stream_id, samples)
        info.next_seq += 1
        info.chunks += 1
        info.samples_seen = int(ack["samples_seen"])  # type: ignore[arg-type]
        info.owner = conn_id
        self._chunks_total += 1
        self._samples_total += samples.shape[0]
        if not self.pool.inline:
            self._mirror_chunk(stream_id, samples.shape[0], ack)
        return {
            "ok": True,
            "op": "chunk",
            "stream_id": stream_id,
            "seq": seq,
            "samples_seen": info.samples_seen,
            "alerts": ack["alerts"],
        }

    async def _handle_close(
        self, conn_id: int, stream_id: str
    ) -> Dict[str, Any]:
        assert self.pool is not None
        info = self._check_owner(conn_id, stream_id)
        if info is None:
            raise ProtocolError(
                "unknown_stream", f"stream {stream_id!r} is not open"
            )
        if not info.live:
            return error_reply(
                "shard_crashed",
                "stream suspended by a shard crash; re-open to resume",
                stream_id=stream_id,
                samples_seen=self._checkpoint_cursor(stream_id),
            )
        try:
            ack = await self.pool.close(stream_id)
        finally:
            self._streams.pop(stream_id, None)
        if self.checkpoints is not None:
            self.checkpoints.delete(stream_id)
        if not self.pool.inline:
            row = telemetry.streams().get(stream_id)
            if row is not None:
                intrusion = ack.get("intrusion")
                row.mark_finished(
                    bool(intrusion) if intrusion is not None else None
                )
        reply: Dict[str, Any] = {
            "ok": True,
            "op": "close",
            "stream_id": stream_id,
            "samples_seen": int(ack["samples_seen"]),  # type: ignore[arg-type]
            "alerts": ack["alerts"],
        }
        if "result" in ack:
            reply["result"] = ack["result"]
            reply["intrusion"] = ack["intrusion"]
        return reply

    def _mirror_chunk(
        self, stream_id: str, n_samples: int, ack: Dict[str, object]
    ) -> None:
        """Replay a worker's chunk stats into the parent's health row."""
        row = telemetry.streams().get(stream_id)
        if row is None:
            return
        row.observe_chunk(
            n_samples=n_samples,
            latency_s=float(ack["latency_s"]),  # type: ignore[arg-type]
            n_indexes=int(ack["n_indexes"]),  # type: ignore[arg-type]
            n_quarantined=int(ack["n_quarantined"]),  # type: ignore[arg-type]
            sensor_fault=bool(ack["sensor_fault"]),
        )
        alerts = ack["alerts"]
        assert isinstance(alerts, list)
        for alert in alerts:
            row.note_alert(
                str(alert["submodule"]), float(alert["time_s"])
            )
