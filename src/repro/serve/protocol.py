"""The fleet service wire protocol: line-delimited JSON over a socket.

One request per line, one reply per line, strictly in order per
connection — per-stream chunk ordering therefore falls out of "one
connection per stream", with no sequence reassembly on the server.

Requests (client → server)::

    {"op": "open",  "stream_id": "...", "sample_rate": 200.0,
     "resume": true, "restart": false}
    {"op": "chunk", "stream_id": "...", "seq": 0, "samples": [[...], ...]}
    {"op": "close", "stream_id": "..."}
    {"op": "ping"}

Replies (server → client) always carry ``ok``::

    {"ok": true, "op": "open", "stream_id": "...", "resumed": false,
     "samples_seen": 0}
    {"ok": true, "op": "chunk", "stream_id": "...", "seq": 0,
     "samples_seen": 512, "alerts": [...]}
    {"ok": true, "op": "close", "stream_id": "...", "result": {...}}
    {"ok": true, "op": "pong", "stats": {...}}
    {"ok": false, "error": "<code>", "message": "...", ...}

``samples_seen`` is the resume cursor: after a shard crash the client
re-``open``s with ``resume`` and continues pushing from the
``samples_seen`` the reply reports (the engine's checkpointed position).
``seq`` is a per-session chunk counter starting at 0 on every ``open`` —
a gap or repeat is a client bug and is rejected with ``bad_seq``.

Error codes: ``bad_request`` (unparseable/ill-typed message),
``unknown_stream``, ``stream_busy`` (already owned by a live
connection), ``bad_seq``, ``bad_samples``, ``shard_crashed`` (worker
died; re-open to resume from the checkpoint), ``shutting_down``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

import numpy as np

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode",
    "decode_request",
    "error_reply",
    "samples_to_array",
]

#: Protocol schema version (echoed in ``ping`` replies).
PROTOCOL_VERSION = 1

#: Upper bound on one wire line.  8 MiB fits ~500k float samples per
#: chunk — far beyond any sane DAQ chunk — while bounding server memory
#: per connection.
MAX_LINE_BYTES = 8 * 1024 * 1024

_OPS = ("open", "chunk", "close", "ping")


class ProtocolError(ValueError):
    """A malformed request; ``code`` is the wire error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def encode(message: Dict[str, Any]) -> bytes:
    """One wire line: compact JSON + newline (strict JSON, no NaN)."""
    return (
        json.dumps(message, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def error_reply(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    """Build an ``ok: false`` reply."""
    reply: Dict[str, Any] = {"ok": False, "error": code, "message": message}
    reply.update(extra)
    return reply


def _require_stream_id(doc: Dict[str, Any]) -> str:
    stream_id = doc.get("stream_id")
    if not isinstance(stream_id, str) or not stream_id:
        raise ProtocolError(
            "bad_request", "stream_id must be a non-empty string"
        )
    if len(stream_id) > 512:
        raise ProtocolError("bad_request", "stream_id longer than 512 chars")
    return stream_id


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse + shape-check one request line.

    Returns the request dict with ``op`` and (where applicable)
    ``stream_id`` validated; payload fields (``samples``) are validated
    separately by :func:`samples_to_array` so the error can carry the
    stream/seq context.
    """
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("bad_request", f"invalid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    op = doc.get("op")
    if op not in _OPS:
        raise ProtocolError(
            "bad_request", f"op must be one of {_OPS}, got {op!r}"
        )
    if op != "ping":
        _require_stream_id(doc)
    if op == "chunk":
        seq = doc.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise ProtocolError(
                "bad_request", "chunk seq must be a non-negative int"
            )
    return doc


def samples_to_array(payload: Any) -> np.ndarray:
    """Convert a request's ``samples`` field to a float64 sample block.

    Accepts ``[v, v, ...]`` (single channel) or ``[[v, ...], ...]``
    (``(n_samples, n_channels)``).  Non-numeric content raises
    :class:`ProtocolError` (``bad_samples``); non-finite values are
    allowed — sensor faults are the sanitize stage's job, not the
    transport's.
    """
    if not isinstance(payload, list) or not payload:
        raise ProtocolError(
            "bad_samples", "samples must be a non-empty JSON array"
        )
    try:
        arr = np.asarray(payload, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            "bad_samples", f"samples must be numeric: {exc}"
        ) from None
    if arr.ndim == 1:
        arr = arr[:, np.newaxis]
    if arr.ndim != 2:
        raise ProtocolError(
            "bad_samples",
            f"samples must be 1-D or 2-D, got shape {arr.shape}",
        )
    return arr


def read_address(spec: str) -> Optional[tuple]:
    """Parse ``host:port`` into ``(host, port)``; ``None`` if not TCP."""
    host, sep, port_s = spec.rpartition(":")
    if not sep:
        return None
    try:
        return (host or "127.0.0.1", int(port_s))
    except ValueError:
        return None
