"""Load generator: replay recorded runs as paced live fleet traffic.

The client half of the fleet service: one connection per printer stream,
each replaying its observed samples as ``chunk`` messages paced against
the recording's own timebase (``pace=1`` → real time, ``pace=0`` → as
fast as the service acknowledges).  Reports the numbers that matter for
capacity planning — p50/p99 ingest round-trip latency, aggregate
samples/s, streams/core — and knows the resume protocol: on a
``shard_crashed`` reply it re-``open``s and rewinds to the acknowledged
checkpoint cursor, exactly like a real edge client riding out a server
worker restart.

``verify_offline`` closes the loop on correctness: every served final
verdict is compared field-for-field (floats bit-exact) against an
offline :class:`~repro.core.engine.DetectionEngine` run of the same
samples — the service must be a transport, never a perturbation.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .model import ServeModel, demo_observed
from .pacing import Pacer
from .protocol import MAX_LINE_BYTES, encode

__all__ = [
    "LoadgenError",
    "LoadgenResult",
    "StreamSpec",
    "offline_verdict",
    "run_loadgen",
    "synth_streams",
]

#: A TCP ``(host, port)`` pair or a unix-socket path.
Address = Union[Tuple[str, int], str, Path]


class LoadgenError(RuntimeError):
    """The service rejected a request the loadgen cannot recover from."""


@dataclass(frozen=True)
class StreamSpec:
    """One printer stream to replay."""

    stream_id: str
    samples: np.ndarray
    sample_rate: float


@dataclass
class LoadgenResult:
    """Aggregate outcome of one load-generation run."""

    n_streams: int
    total_samples: int
    total_chunks: int
    elapsed_s: float
    ingest_p50_ms: float
    ingest_p99_ms: float
    ingest_mean_ms: float
    samples_per_s: float
    #: Times a stream resumed from checkpoint after ``shard_crashed``.
    resumes: int
    #: ``{stream_id: final close reply}`` (includes ``result`` verdicts).
    verdicts: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Stream ids whose served verdict differed from the offline engine.
    mismatches: List[str] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"streams            {self.n_streams:10d}",
            f"samples            {self.total_samples:10d}",
            f"chunks             {self.total_chunks:10d}",
            f"elapsed_s          {self.elapsed_s:10.2f}",
            f"ingest_p50_ms      {self.ingest_p50_ms:10.3f}",
            f"ingest_p99_ms      {self.ingest_p99_ms:10.3f}",
            f"samples_per_s      {self.samples_per_s:10,.0f}",
            f"resumes            {self.resumes:10d}",
        ]
        if self.mismatches:
            lines.append(f"VERDICT MISMATCHES {len(self.mismatches)}")
        return "\n".join(lines)


def synth_streams(
    n_streams: int,
    n_samples: int = 8_000,
    sample_rate: float = 200.0,
    prefix: str = "printer",
) -> List[StreamSpec]:
    """The deterministic demo fleet (see :func:`~repro.serve.model.demo_observed`)."""
    return [
        StreamSpec(
            stream_id=f"{prefix}-{k:04d}",
            samples=demo_observed(k, n_samples, sample_rate),
            sample_rate=sample_rate,
        )
        for k in range(int(n_streams))
    ]


def offline_verdict(model: ServeModel, samples: np.ndarray) -> Dict[str, Any]:
    """The ground-truth verdict: one offline engine run of the samples."""
    engine = model.build_engine()
    engine.push(samples)
    result = engine.finalize()
    assert result.detection is not None
    return result.detection.to_dict()


async def _connect(
    address: Address,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    if isinstance(address, tuple):
        host, port = address
        return await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
    return await asyncio.open_unix_connection(
        str(address), limit=MAX_LINE_BYTES
    )


async def _request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    doc: Dict[str, Any],
) -> Dict[str, Any]:
    writer.write(encode(doc))
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise LoadgenError("connection closed by server")
    reply = json.loads(line.decode("utf-8"))
    assert isinstance(reply, dict)
    return reply


async def _open_stream(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    spec: StreamSpec,
    max_attempts: int = 20,
) -> Dict[str, Any]:
    """Open (or resume) the stream, riding out shard restarts.

    A ``shard_crashed`` reply to ``open`` means the replacement worker
    is still coming up (or died again); back off briefly and retry —
    bounded, so a permanently broken service still fails loudly.
    """
    for attempt in range(max_attempts):
        reply = await _request(
            reader,
            writer,
            {
                "op": "open",
                "stream_id": spec.stream_id,
                "sample_rate": spec.sample_rate,
                "resume": True,
            },
        )
        if reply.get("ok"):
            return reply
        if reply.get("error") != "shard_crashed":
            raise LoadgenError(f"open {spec.stream_id}: {reply}")
        await asyncio.sleep(min(0.1 * (attempt + 1), 1.0))
    raise LoadgenError(
        f"open {spec.stream_id}: shard still down after "
        f"{max_attempts} attempts"
    )


def _jsonable_samples(block: np.ndarray, flat: bool) -> list:
    """Strict-JSON-safe ``samples`` payload for one chunk.

    The wire is strict JSON (no ``NaN`` literals), so non-finite samples
    — sensor dropouts being replayed — are sent as ``null``;
    ``samples_to_array`` on the server turns them back into NaN for the
    sanitize stage.
    """
    data = block[:, 0] if flat else block
    finite = np.isfinite(data)
    if finite.all():
        return data.tolist()
    return np.where(finite, data.astype(object), None).tolist()


async def _drive_stream(
    address: Address,
    spec: StreamSpec,
    chunk_samples: int,
    pace: float,
    latencies: List[float],
    counters: Dict[str, int],
) -> Dict[str, Any]:
    """Replay one stream to completion; returns the final close reply."""
    reader, writer = await _connect(address)
    try:
        n = int(spec.samples.shape[0])
        flat = spec.samples.shape[1] == 1
        reply = await _open_stream(reader, writer, spec)
        cursor = int(reply["samples_seen"])
        seq = 0
        interval = chunk_samples / spec.sample_rate / pace if pace > 0 else 0.0
        pacer = Pacer(interval)
        while True:
            if cursor >= n:
                reply = await _request(
                    reader,
                    writer,
                    {"op": "close", "stream_id": spec.stream_id},
                )
                if reply.get("ok"):
                    return reply
            else:
                if interval:
                    await pacer.async_wait()
                block = spec.samples[cursor : cursor + chunk_samples]
                payload = _jsonable_samples(block, flat)
                t0 = time.perf_counter()
                reply = await _request(
                    reader,
                    writer,
                    {
                        "op": "chunk",
                        "stream_id": spec.stream_id,
                        "seq": seq,
                        "samples": payload,
                    },
                )
                if reply.get("ok"):
                    latencies.append(time.perf_counter() - t0)
                    cursor = int(reply["samples_seen"])
                    seq += 1
                    counters["chunks"] += 1
                    continue
            # Not ok: the only recoverable error is a shard crash — the
            # resume protocol is re-open, rewind to the acknowledged
            # cursor, and keep pushing.
            if reply.get("error") != "shard_crashed":
                raise LoadgenError(f"{spec.stream_id}: {reply}")
            counters["resumes"] += 1
            reply = await _open_stream(reader, writer, spec)
            cursor = int(reply["samples_seen"])
            seq = 0
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def run_loadgen(
    address: Address,
    streams: Sequence[StreamSpec],
    chunk_samples: int = 200,
    pace: float = 0.0,
    verify_model: Optional[ServeModel] = None,
) -> LoadgenResult:
    """Replay every stream concurrently and aggregate the numbers.

    ``pace`` is the replay speed relative to the recordings' own
    timebase (1.0 = real time, 2.0 = double speed, 0 = unpaced).
    ``verify_model`` additionally recomputes every verdict offline and
    records streams whose served verdict is not bit-identical.
    """
    if chunk_samples < 1:
        raise ValueError(f"chunk_samples must be >= 1, got {chunk_samples}")
    if pace < 0:
        raise ValueError(f"pace must be >= 0, got {pace}")
    latencies: List[float] = []
    counters = {"chunks": 0, "resumes": 0}
    t0 = time.perf_counter()
    replies = await asyncio.gather(
        *(
            _drive_stream(
                address, spec, chunk_samples, pace, latencies, counters
            )
            for spec in streams
        )
    )
    elapsed = time.perf_counter() - t0
    verdicts = {
        spec.stream_id: reply for spec, reply in zip(streams, replies)
    }
    mismatches: List[str] = []
    if verify_model is not None:
        for spec in streams:
            expected = offline_verdict(verify_model, spec.samples)
            served = verdicts[spec.stream_id].get("result")
            if served != expected:
                mismatches.append(spec.stream_id)
    total_samples = int(sum(s.samples.shape[0] for s in streams))
    lat_ms = np.asarray(latencies, dtype=np.float64) * 1e3
    return LoadgenResult(
        n_streams=len(streams),
        total_samples=total_samples,
        total_chunks=counters["chunks"],
        elapsed_s=elapsed,
        ingest_p50_ms=float(np.percentile(lat_ms, 50)) if len(lat_ms) else 0.0,
        ingest_p99_ms=float(np.percentile(lat_ms, 99)) if len(lat_ms) else 0.0,
        ingest_mean_ms=float(lat_ms.mean()) if len(lat_ms) else 0.0,
        samples_per_s=total_samples / elapsed if elapsed > 0 else 0.0,
        resumes=counters["resumes"],
        verdicts=verdicts,
        mismatches=mismatches,
    )
