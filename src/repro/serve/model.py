"""The fleet service's on-disk model: what every detection worker loads.

A deployed NSYNC fleet learns its reference signal, DWM parameters, and
discriminator thresholds once (``repro train``) and then serves many
prints against them.  :class:`ServeModel` is that bundle as a directory —

* ``reference.npz`` — the reference side-channel signal (``repro.io``
  signal format),
* ``dwm.json`` — :class:`~repro.sync.dwm.DwmParams`,
* ``thresholds.json`` — :class:`~repro.core.discriminator.Thresholds`,
* ``serve.json`` — metric + filter window (the remaining engine knobs),

small enough to ship to every shard worker and human-auditable per the
``repro.io`` convention.  Worker processes load it once in their
initializer; every stream on the shard then gets a fresh
:class:`~repro.core.engine.DetectionEngine` from :meth:`build_engine`.

:func:`demo_model` / :func:`demo_observed` build the deterministic demo
fleet (the :class:`~repro.eval.throughput.ThroughputWorkload` texture,
one noise seed per stream) that tests, CI, and ``benchmarks/bench_serve``
replay — the served results are bit-comparable against an offline
``DetectionEngine`` run of the same arrays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..core.discriminator import Thresholds
from ..core.engine import DetectionEngine
from ..eval.throughput import ThroughputWorkload
from ..io import (
    load_dwm_params,
    load_signal,
    load_thresholds,
    save_dwm_params,
    save_signal,
    save_thresholds,
)
from ..signals.signal import Signal
from ..sync.dwm import DwmParams, DwmSynchronizer

__all__ = ["ServeModel", "demo_model", "demo_observed"]

PathLike = Union[str, Path]


@dataclass
class ServeModel:
    """Everything needed to open a detection engine for one printer type."""

    reference: Signal
    params: DwmParams
    thresholds: Thresholds
    metric: str = "correlation"
    filter_window: int = 3

    # ------------------------------------------------------------------
    def save(self, directory: PathLike) -> Path:
        """Write the model directory (created if missing)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_signal(self.reference, directory / "reference.npz")
        save_dwm_params(self.params, directory / "dwm_params.json")
        save_thresholds(self.thresholds, directory / "thresholds.json")
        (directory / "serve.json").write_text(
            json.dumps(
                {
                    "metric": self.metric,
                    "filter_window": self.filter_window,
                },
                indent=2,
            )
            + "\n"
        )
        return directory

    @classmethod
    def from_dir(cls, directory: PathLike) -> "ServeModel":
        """Load a model directory written by :meth:`save`."""
        directory = Path(directory)
        if not (directory / "reference.npz").exists():
            raise FileNotFoundError(
                f"{directory} is not a serve model directory "
                "(no reference.npz)"
            )
        metric = "correlation"
        filter_window = 3
        serve_json = directory / "serve.json"
        if serve_json.exists():
            extra = json.loads(serve_json.read_text())
            metric = str(extra.get("metric", metric))
            filter_window = int(extra.get("filter_window", filter_window))
        return cls(
            reference=load_signal(directory / "reference.npz"),
            params=load_dwm_params(directory / "dwm_params.json"),
            thresholds=load_thresholds(directory / "thresholds.json"),
            metric=metric,
            filter_window=filter_window,
        )

    # ------------------------------------------------------------------
    def build_engine(
        self, stream_id: Optional[str] = None
    ) -> DetectionEngine:
        """A fresh armed engine for one stream.

        ``stream_id`` registers the engine in the live telemetry registry
        — pass it in in-process (inline-shard) mode only; process-mode
        workers run un-registered and the parent mirrors their health
        rows from chunk acknowledgements instead.
        """
        return DetectionEngine(
            self.reference,
            DwmSynchronizer(self.params),
            thresholds=self.thresholds,
            metric=self.metric,
            filter_window=self.filter_window,
            stream_id=stream_id,
        )


# ---------------------------------------------------------------------------
# The deterministic demo fleet (tests, CI, benchmarks)
# ---------------------------------------------------------------------------
#: Per-stream observed-noise seed base; stream ``k`` uses ``_SEED0 + k``.
_SEED0 = 1000


def _demo_workload(
    n_samples: int, sample_rate: float
) -> ThroughputWorkload:
    return ThroughputWorkload(
        sample_rate=sample_rate, n_samples=int(n_samples)
    )


def demo_model(
    n_samples: int = 8_000, sample_rate: float = 200.0
) -> ServeModel:
    """The demo fleet's model (same texture/params as the throughput
    workload, so streams/core here is comparable with the engine
    throughput history)."""
    w = _demo_workload(n_samples, sample_rate)
    reference, _ = w.signals()
    return ServeModel(
        reference=reference,
        params=DwmParams(
            t_win=w.t_win,
            t_hop=w.t_hop,
            t_ext=w.t_ext,
            t_sigma=w.t_sigma,
            eta=w.eta,
        ),
        thresholds=Thresholds(c_c=50.0, h_c=20.0, v_c=0.5),
    )


def demo_observed(
    k: int, n_samples: int = 8_000, sample_rate: float = 200.0
) -> np.ndarray:
    """Observed samples of demo stream ``k``: the reference texture plus
    stream-specific measurement noise (deterministic in ``k``)."""
    w = _demo_workload(n_samples, sample_rate)
    reference, _ = w.signals()
    rng = np.random.default_rng(_SEED0 + int(k))
    base = reference.data[:, 0]
    observed = base + 0.05 * rng.standard_normal(base.shape[0])
    return observed[:, np.newaxis].copy()
