"""Seeded, composable fault models for side-channel signals.

Where :mod:`repro.printer.noise` perturbs *timing* (the phenomenon the
paper is built around), this module perturbs the *acquisition path*: the
ways a real DAQ chain mangles samples before the IDS ever sees them.
Each fault is an immutable dataclass with two entry points:

* :meth:`FaultModel.apply` — perturb a finished :class:`Signal` (the batch
  pipeline's view of a recording),
* :meth:`FaultModel.apply_chunks` — perturb a chunk stream (the streaming
  pipeline's view).  The base class provides a deterministic buffered
  fallback that re-emits the original chunk sizes, so every fault works in
  both modes; faults with genuinely chunk-level semantics can override it.

All randomness flows through an explicit ``numpy.random.Generator`` so a
fault campaign is reproducible from its seed.  Faults compose via
:class:`FaultChain` (applied left to right).

The models cover the failure classes the input-sanitization stage
(:mod:`repro.core.health`) must survive: dark channels
(:class:`ChannelDropout`), non-finite garbage (:class:`NanBurst`), ADC
clipping (:class:`Saturation`), clock skew (:class:`SampleRateSkew`),
DAQ buffer mishaps (:class:`ChunkDuplication`, :class:`ChunkTruncation`),
and a mid-print disconnect/reconnect (:class:`DaqDisconnect`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..signals.signal import Signal

__all__ = [
    "FaultModel",
    "FaultChain",
    "ChannelDropout",
    "NanBurst",
    "Saturation",
    "SampleRateSkew",
    "ChunkDuplication",
    "ChunkTruncation",
    "DaqDisconnect",
]


def _as_chunk(samples: np.ndarray) -> np.ndarray:
    """Normalize one stream chunk to ``(n, n_channels)`` float64."""
    chunk = np.asarray(samples, dtype=np.float64)
    if chunk.ndim == 1:
        chunk = chunk[:, np.newaxis]
    return chunk


def _span(
    n: int, sample_rate: float, start_s: float, duration_s: float
) -> Tuple[int, int]:
    """Clip a ``[start_s, start_s + duration_s)`` window to sample indexes."""
    start = max(0, int(round(start_s * sample_rate)))
    stop = min(n, start + int(round(duration_s * sample_rate)))
    return start, max(start, stop)


def _channel_index(channels: Optional[Tuple[int, ...]], n_ch: int) -> List[int]:
    """Resolve a channel selection (``None`` means every channel)."""
    if channels is None:
        return list(range(n_ch))
    return [c for c in channels if 0 <= c < n_ch]


class FaultModel:
    """Base class: one acquisition-path perturbation.

    Subclasses implement :meth:`apply`; the chunk-stream interface comes
    for free via a buffered fallback (the whole stream is collected,
    perturbed as one signal, and re-emitted in the original chunk sizes —
    plus one trailing chunk when the fault changed the stream length).
    """

    def apply(self, signal: Signal, rng: np.random.Generator) -> Signal:
        """Return the perturbed signal (the input is never mutated)."""
        raise NotImplementedError

    def apply_chunks(
        self,
        chunks: Iterable[np.ndarray],
        sample_rate: float,
        rng: np.random.Generator,
    ) -> Iterator[np.ndarray]:
        """Perturb a chunk stream; yields ``(n, n_channels)`` arrays."""
        buffered = [_as_chunk(c) for c in chunks]
        sizes = [c.shape[0] for c in buffered]
        if not buffered:
            return
        whole = np.concatenate(buffered, axis=0)
        faulted = self.apply(Signal(whole, sample_rate), rng).data
        pos = 0
        for size in sizes:
            yield faulted[pos : pos + size]
            pos += size
        if pos < faulted.shape[0]:
            yield faulted[pos:]


@dataclass(frozen=True)
class FaultChain(FaultModel):
    """Apply several faults in sequence (left to right).

    The empty chain is the identity — handy as the control case of a
    fault matrix.
    """

    faults: Tuple[FaultModel, ...] = ()

    def apply(self, signal: Signal, rng: np.random.Generator) -> Signal:
        for fault in self.faults:
            signal = fault.apply(signal, rng)
        return signal

    def apply_chunks(
        self,
        chunks: Iterable[np.ndarray],
        sample_rate: float,
        rng: np.random.Generator,
    ) -> Iterator[np.ndarray]:
        stream: Iterable[np.ndarray] = (_as_chunk(c) for c in chunks)
        for fault in self.faults:
            stream = fault.apply_chunks(stream, sample_rate, rng)
        return iter(stream)


@dataclass(frozen=True)
class ChannelDropout(FaultModel):
    """A channel goes dark: the span is replaced by one constant value.

    This is the dead-sensor / unplugged-input failure the fail-closed
    :data:`~repro.core.health.SENSOR_FAULT` rule exists for (when the span
    outlasts :attr:`~repro.core.health.SanitizePolicy.max_dark_s`).
    """

    start_s: float
    duration_s: float
    channels: Optional[Tuple[int, ...]] = None
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s < 0:
            raise ValueError("start_s and duration_s must be non-negative")

    def apply(self, signal: Signal, rng: np.random.Generator) -> Signal:
        start, stop = _span(
            signal.n_samples, signal.sample_rate, self.start_s, self.duration_s
        )
        if start == stop:
            return signal
        data = signal.data.copy()
        for c in _channel_index(self.channels, signal.n_channels):
            data[start:stop, c] = self.value
        return signal.with_data(data)


@dataclass(frozen=True)
class NanBurst(FaultModel):
    """Non-finite garbage: samples in the span become NaN.

    ``fraction`` < 1 scatters NaNs uniformly at random inside the span
    (corrupt frames) instead of blanking it solid (a dead stretch).
    """

    start_s: float
    duration_s: float
    channels: Optional[Tuple[int, ...]] = None
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s < 0:
            raise ValueError("start_s and duration_s must be non-negative")
        if not 0 < self.fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def apply(self, signal: Signal, rng: np.random.Generator) -> Signal:
        start, stop = _span(
            signal.n_samples, signal.sample_rate, self.start_s, self.duration_s
        )
        if start == stop:
            return signal
        data = signal.data.copy()
        rows: np.ndarray = np.arange(start, stop)
        if self.fraction < 1.0:
            keep = rng.random(rows.shape[0]) < self.fraction
            rows = rows[keep]
        for c in _channel_index(self.channels, signal.n_channels):
            data[rows, c] = np.nan
        return signal.with_data(data)


@dataclass(frozen=True)
class Saturation(FaultModel):
    """ADC clipping: samples in the span are clamped to ``[-limit, limit]``.

    Pick the limit from the reference amplitude (e.g. a high percentile of
    ``|x|``) so only peaks clip; a limit below the signal floor turns the
    channel constant and — correctly — reads as dark.
    """

    limit: float
    start_s: float = 0.0
    duration_s: float = float("inf")
    channels: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.limit > 0:
            raise ValueError(f"limit must be positive, got {self.limit}")
        if self.start_s < 0 or self.duration_s < 0:
            raise ValueError("start_s and duration_s must be non-negative")

    def apply(self, signal: Signal, rng: np.random.Generator) -> Signal:
        n = signal.n_samples
        if np.isinf(self.duration_s):
            start = max(0, int(round(self.start_s * signal.sample_rate)))
            stop = n
        else:
            start, stop = _span(
                n, signal.sample_rate, self.start_s, self.duration_s
            )
        if start >= stop:
            return signal
        data = signal.data.copy()
        for c in _channel_index(self.channels, signal.n_channels):
            np.clip(
                data[start:stop, c],
                -self.limit,
                self.limit,
                out=data[start:stop, c],
            )
        return signal.with_data(data)


@dataclass(frozen=True)
class SampleRateSkew(FaultModel):
    """DAQ clock skew: the stream is resampled by ``factor``.

    ``factor > 1`` means the observed clock runs slow, so the same print
    yields proportionally *more* samples (the signal appears stretched);
    ``factor < 1`` compresses it.  Linear interpolation per channel.
    """

    factor: float

    def __post_init__(self) -> None:
        if not self.factor > 0:
            raise ValueError(f"factor must be positive, got {self.factor}")

    def apply(self, signal: Signal, rng: np.random.Generator) -> Signal:
        n = signal.n_samples
        if n < 2 or self.factor == 1.0:
            return signal
        new_n = max(2, int(round(n * self.factor)))
        positions = np.arange(new_n) / self.factor
        positions = np.clip(positions, 0.0, n - 1)
        base = np.arange(n, dtype=np.float64)
        resampled = np.empty((new_n, signal.n_channels))
        for c in range(signal.n_channels):
            resampled[:, c] = np.interp(positions, base, signal.data[:, c])
        return signal.with_data(resampled)


@dataclass(frozen=True)
class ChunkDuplication(FaultModel):
    """A DAQ buffer is delivered twice: the span is re-inserted after
    itself, shifting the rest of the stream late."""

    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("start_s must be >= 0 and duration_s positive")

    def apply(self, signal: Signal, rng: np.random.Generator) -> Signal:
        start, stop = _span(
            signal.n_samples, signal.sample_rate, self.start_s, self.duration_s
        )
        if start == stop:
            return signal
        data = signal.data
        return signal.with_data(
            np.concatenate([data[:stop], data[start:stop], data[stop:]], axis=0)
        )


@dataclass(frozen=True)
class ChunkTruncation(FaultModel):
    """A DAQ buffer is lost without trace: the span is deleted and the
    rest of the stream arrives early (no gap marker, unlike a dropout)."""

    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("start_s must be >= 0 and duration_s positive")

    def apply(self, signal: Signal, rng: np.random.Generator) -> Signal:
        start, stop = _span(
            signal.n_samples, signal.sample_rate, self.start_s, self.duration_s
        )
        if start == stop:
            return signal
        data = signal.data
        return signal.with_data(
            np.concatenate([data[:start], data[stop:]], axis=0)
        )


@dataclass(frozen=True)
class DaqDisconnect(FaultModel):
    """Mid-print disconnect/reconnect of the whole acquisition front-end.

    ``mode`` selects what the IDS sees during the outage:

    * ``"nan"`` — the driver keeps delivering frames full of NaN,
    * ``"zeros"`` — the ADC reads a grounded input (all channels dark),
    * ``"drop"`` — nothing is delivered at all; the stream resumes where
      the printer is, so everything after the gap is early.
    """

    start_s: float
    duration_s: float
    mode: str = "nan"

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise ValueError("start_s must be >= 0 and duration_s positive")
        if self.mode not in ("nan", "zeros", "drop"):
            raise ValueError(
                f"mode must be 'nan', 'zeros', or 'drop', got {self.mode!r}"
            )

    def apply(self, signal: Signal, rng: np.random.Generator) -> Signal:
        if self.mode == "drop":
            return ChunkTruncation(self.start_s, self.duration_s).apply(
                signal, rng
            )
        if self.mode == "zeros":
            return ChannelDropout(self.start_s, self.duration_s).apply(
                signal, rng
            )
        return NanBurst(self.start_s, self.duration_s).apply(signal, rng)

    def apply_chunks(
        self,
        chunks: Iterable[np.ndarray],
        sample_rate: float,
        rng: np.random.Generator,
    ) -> Iterator[np.ndarray]:
        """Streaming view: chunks overlapping the outage are blanked (or,
        in ``"drop"`` mode, the affected samples never arrive)."""
        pos = 0
        for raw in chunks:
            chunk = _as_chunk(raw)
            n = chunk.shape[0]
            start, stop = _span(
                pos + n, sample_rate, self.start_s, self.duration_s
            )
            lo, hi = max(start - pos, 0), min(stop - pos, n)
            pos += n
            if lo >= hi:
                yield chunk
                continue
            if self.mode == "drop":
                yield np.concatenate([chunk[:lo], chunk[hi:]], axis=0)
            else:
                out = chunk.copy()
                out[lo:hi] = np.nan if self.mode == "nan" else 0.0
                yield out
