"""Fault-injection campaign: run the fault matrix against both detectors.

The graceful-degradation contract of the IDS is behavioural, so it gets an
executable check: simulate one printer, train the IDS on clean runs, then
replay one benign probe through every :class:`~repro.faults.models.FaultModel`
in the matrix — once through the batch :class:`~repro.core.pipeline.NsyncIds`
and once chunk-by-chunk through
:class:`~repro.core.streaming.StreamingNsyncIds` — and assert, per case:

1. **No unhandled exception.**  Degenerate input must degrade the verdict,
   never crash the detector.
2. **Finite evidence.**  No NaN/inf ever reaches the threshold comparisons
   (a non-finite comparison silently fails *open*).
3. **Fail-closed on dark channels.**  Faults that starve the IDS of signal
   past the :class:`~repro.core.health.SanitizePolicy` limits must raise
   the :data:`~repro.core.health.SENSOR_FAULT` alarm.

The campaign is seeded end to end (simulation seeds through the engine's
deterministic seed stream, fault randomness through per-case
``np.random.default_rng`` seeds), so a CI chaos job replays bit-identical
faults.  ``repro faults`` is the CLI front-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.health import SENSOR_FAULT, SanitizePolicy
from ..core.pipeline import NsyncIds
from ..core.streaming import StreamingNsyncIds
from ..eval.dataset import PrinterSetup, default_setup
from ..eval.engine import CampaignEngine, RunRequest
from ..eval.reporting import format_table
from ..signals.signal import Signal
from ..sync.dwm import DwmSynchronizer
from .models import (
    ChannelDropout,
    ChunkDuplication,
    ChunkTruncation,
    DaqDisconnect,
    FaultChain,
    FaultModel,
    NanBurst,
    SampleRateSkew,
    Saturation,
)

__all__ = [
    "FaultCase",
    "FaultCaseResult",
    "FaultCampaignResult",
    "default_fault_matrix",
    "run_fault_campaign",
    "render_fault_table",
]


@dataclass(frozen=True)
class FaultCase:
    """One entry of the fault matrix: a named fault plus its expectation."""

    name: str
    fault: FaultModel
    #: True when the fault starves the IDS of signal badly enough that the
    #: fail-closed SENSOR_FAULT alarm *must* fire.
    expect_sensor_fault: bool = False


@dataclass(frozen=True)
class FaultCaseResult:
    """Outcome of one (fault case, detector) cell of the campaign."""

    case: FaultCase
    detector: str  # "batch" or "streaming"
    ok_no_exception: bool
    ok_finite: bool
    ok_sensor_fault: bool
    sensor_fault: bool = False
    is_intrusion: bool = False
    error: Optional[str] = None

    @property
    def passed(self) -> bool:
        """All three contract checks held for this cell."""
        return self.ok_no_exception and self.ok_finite and self.ok_sensor_fault


@dataclass(frozen=True)
class FaultCampaignResult:
    """Every cell of the matrix, plus the trained thresholds used."""

    results: Tuple[FaultCaseResult, ...]
    detectors: Tuple[str, ...] = ("batch", "streaming")
    seed: int = 0
    channel: str = "ACC"
    extras: dict = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def n_failed(self) -> int:
        return sum(not r.passed for r in self.results)

    def to_dict(self) -> dict:
        """JSON-safe rendition for ``repro faults --json``."""
        return {
            "all_passed": self.all_passed,
            "n_cases": len(self.results),
            "n_failed": self.n_failed,
            "seed": self.seed,
            "channel": self.channel,
            "detectors": list(self.detectors),
            "results": [
                {
                    "case": r.case.name,
                    "detector": r.detector,
                    "passed": r.passed,
                    "ok_no_exception": r.ok_no_exception,
                    "ok_finite": r.ok_finite,
                    "ok_sensor_fault": r.ok_sensor_fault,
                    "expect_sensor_fault": r.case.expect_sensor_fault,
                    "sensor_fault": r.sensor_fault,
                    "is_intrusion": r.is_intrusion,
                    "error": r.error,
                }
                for r in self.results
            ],
        }


def default_fault_matrix(
    duration_s: float,
    amplitude: float = 1.0,
    policy: Optional[SanitizePolicy] = None,
) -> List[FaultCase]:
    """The standard chaos matrix for a probe of ``duration_s`` seconds.

    Fault positions scale with the probe duration; dark faults last twice
    the policy's ``max_dark_s`` so they *must* trip the fail-closed rule,
    while short bursts stay under it so they must not.  ``amplitude``
    should be a high percentile of the probe's ``|x|`` so the saturation
    case clips peaks only.
    """
    policy = policy if policy is not None else SanitizePolicy()
    dark_s = 2.0 * policy.max_dark_s
    burst_s = min(0.5 * policy.max_dark_s, 0.2 * duration_s)
    return [
        FaultCase("clean", FaultChain(())),
        FaultCase(
            "nan_burst",
            NanBurst(start_s=0.3 * duration_s, duration_s=burst_s),
        ),
        FaultCase(
            "scattered_nans",
            NanBurst(
                start_s=0.1 * duration_s,
                duration_s=0.5 * duration_s,
                fraction=0.05,
            ),
        ),
        FaultCase(
            "dropout_dark",
            ChannelDropout(start_s=0.25 * duration_s, duration_s=dark_s),
            expect_sensor_fault=True,
        ),
        FaultCase("saturation", Saturation(limit=amplitude)),
        FaultCase("skew_slow", SampleRateSkew(1.02)),
        FaultCase("skew_fast", SampleRateSkew(0.98)),
        FaultCase(
            "chunk_duplicated",
            ChunkDuplication(start_s=0.4 * duration_s, duration_s=burst_s),
        ),
        FaultCase(
            "chunk_truncated",
            ChunkTruncation(start_s=0.4 * duration_s, duration_s=burst_s),
        ),
        FaultCase(
            "disconnect_nan",
            DaqDisconnect(
                start_s=0.5 * duration_s, duration_s=dark_s, mode="nan"
            ),
            expect_sensor_fault=True,
        ),
        FaultCase(
            "disconnect_drop",
            DaqDisconnect(
                start_s=0.5 * duration_s, duration_s=burst_s, mode="drop"
            ),
        ),
        FaultCase(
            "burst_then_skew",
            FaultChain(
                (
                    NanBurst(start_s=0.2 * duration_s, duration_s=burst_s),
                    SampleRateSkew(1.01),
                )
            ),
        ),
    ]


def _finite_arrays(arrays: Sequence[np.ndarray]) -> bool:
    return all(np.isfinite(np.asarray(a, dtype=float)).all() for a in arrays)


def _run_batch_case(
    case: FaultCase,
    ids: NsyncIds,
    probe: Signal,
    rng: np.random.Generator,
) -> FaultCaseResult:
    try:
        faulted = case.fault.apply(probe, rng)
        verdict = ids.detect(faulted)
    except Exception as exc:  # noqa: BLE001 - the whole point of the harness
        return FaultCaseResult(
            case=case,
            detector="batch",
            ok_no_exception=False,
            ok_finite=False,
            ok_sensor_fault=False,
            error=f"{type(exc).__name__}: {exc}",
        )
    f = verdict.features
    finite = _finite_arrays(
        [
            f.c_disp,
            f.h_dist_filtered,
            f.v_dist_filtered,
            np.asarray([f.duration_mismatch]),
        ]
    )
    fault_ok = verdict.sensor_fault_fired or not case.expect_sensor_fault
    return FaultCaseResult(
        case=case,
        detector="batch",
        ok_no_exception=True,
        ok_finite=finite,
        ok_sensor_fault=fault_ok,
        sensor_fault=verdict.sensor_fault_fired,
        is_intrusion=verdict.is_intrusion,
    )


def _run_streaming_case(
    case: FaultCase,
    detector: StreamingNsyncIds,
    probe: Signal,
    chunk_s: float,
    rng: np.random.Generator,
) -> FaultCaseResult:
    try:
        hop = max(1, int(round(chunk_s * probe.sample_rate)))
        chunks = [
            probe.data[i : i + hop] for i in range(0, probe.n_samples, hop)
        ]
        for chunk in case.fault.apply_chunks(chunks, probe.sample_rate, rng):
            detector.push(chunk)
        # End of stream: run the engine's end-of-run checks (duration,
        # non-finite fraction) so the streaming contract covers the same
        # verdict surface as the batch one — both are the same core.
        result = detector.finalize()
    except Exception as exc:  # noqa: BLE001 - the whole point of the harness
        return FaultCaseResult(
            case=case,
            detector="streaming",
            ok_no_exception=False,
            ok_finite=False,
            ok_sensor_fault=False,
            error=f"{type(exc).__name__}: {exc}",
        )
    verdict = result.detection
    assert verdict is not None  # streaming detectors are always armed
    f = verdict.features
    finite = _finite_arrays(
        [
            f.c_disp,
            f.h_dist_filtered,
            f.v_dist_filtered,
            np.asarray([f.duration_mismatch]),
        ]
    )
    sensor_fault = verdict.sensor_fault_fired or any(
        a.submodule == SENSOR_FAULT for a in detector.alerts
    )
    fault_ok = sensor_fault or not case.expect_sensor_fault
    return FaultCaseResult(
        case=case,
        detector="streaming",
        ok_no_exception=True,
        ok_finite=finite,
        ok_sensor_fault=fault_ok,
        sensor_fault=sensor_fault,
        is_intrusion=verdict.is_intrusion,
    )


def run_fault_campaign(
    setup: Optional[PrinterSetup] = None,
    channel: str = "ACC",
    n_train: int = 4,
    seed: int = 0,
    engine: Optional[CampaignEngine] = None,
    detectors: Sequence[str] = ("batch", "streaming"),
    chunk_s: float = 0.25,
    policy: Optional[SanitizePolicy] = None,
    r: float = 0.3,
    cases: Optional[Sequence[FaultCase]] = None,
) -> FaultCampaignResult:
    """Simulate, train, and replay the fault matrix against the detectors.

    Runs are produced through the :class:`~repro.eval.engine.CampaignEngine`
    (so a cache-backed engine amortizes the simulations across invocations)
    with the same deterministic seed-stream convention as
    :func:`~repro.eval.dataset.generate_campaign`.
    """
    for name in detectors:
        if name not in ("batch", "streaming"):
            raise ValueError(f"unknown detector {name!r}")
    setup = setup if setup is not None else default_setup()
    engine = engine if engine is not None else CampaignEngine()
    policy = policy if policy is not None else SanitizePolicy()
    job = setup.job()

    base = seed * 1_000_003
    requests = [
        RunRequest(setup, job, "reference", False, base)
    ]
    requests += [
        RunRequest(setup, job, f"train{k}", False, base + 1 + k)
        for k in range(n_train)
    ]
    requests.append(RunRequest(setup, job, "probe", False, base + 1 + n_train))
    runs = engine.execute(requests, channels=(channel,))
    reference = runs[0].signals[channel]
    training = [run.signals[channel] for run in runs[1 : 1 + n_train]]
    probe = runs[-1].signals[channel]

    ids = NsyncIds(
        reference, DwmSynchronizer(setup.dwm_params), policy=policy
    )
    thresholds = ids.fit(training, r=r)

    if cases is None:
        amplitude = float(np.percentile(np.abs(probe.data), 99.5))
        cases = default_fault_matrix(probe.duration, amplitude, policy)

    results: List[FaultCaseResult] = []
    for index, case in enumerate(cases):
        if "batch" in detectors:
            rng = np.random.default_rng([seed, index, 0])
            results.append(_run_batch_case(case, ids, probe, rng))
        if "streaming" in detectors:
            rng = np.random.default_rng([seed, index, 1])
            streaming = StreamingNsyncIds(
                reference,
                setup.dwm_params,
                thresholds,
                filter_window=ids.filter_window,
                policy=policy,
            )
            results.append(
                _run_streaming_case(case, streaming, probe, chunk_s, rng)
            )
    return FaultCampaignResult(
        results=tuple(results),
        detectors=tuple(detectors),
        seed=seed,
        channel=channel,
        extras={"thresholds": thresholds, "n_cases": len(cases)},
    )


def render_fault_table(result: FaultCampaignResult) -> str:
    """Monospace summary of the campaign, one row per (case, detector)."""
    headers = [
        "case",
        "detector",
        "passed",
        "finite",
        "sensor_fault",
        "expected",
        "intrusion",
        "error",
    ]
    rows = [
        [
            r.case.name,
            r.detector,
            "yes" if r.passed else "NO",
            "yes" if r.ok_finite else "NO",
            "yes" if r.sensor_fault else "no",
            "yes" if r.case.expect_sensor_fault else "no",
            "yes" if r.is_intrusion else "no",
            r.error or "",
        ]
        for r in result.results
    ]
    return format_table(headers, rows)
