"""Fault injection for the acquisition path (chaos testing the IDS).

The paper's IDS watches a *physical* acquisition chain, and physical
chains fail: sensors die, ADCs clip, drivers drop buffers, cables come
loose mid-print.  This package makes those failures reproducible:

* :mod:`repro.faults.models` — seeded, composable :class:`FaultModel`
  perturbations for both a finished :class:`~repro.signals.signal.Signal`
  and a streaming chunk sequence,
* :mod:`repro.faults.campaign` — the fault-matrix harness that replays a
  benign probe through every fault against both the batch and streaming
  detectors and checks the graceful-degradation contract (no crash, no
  non-finite evidence, fail-closed on dark channels).

``repro faults`` runs the matrix from the command line; CI runs it as the
chaos job.
"""

from .models import (
    ChannelDropout,
    ChunkDuplication,
    ChunkTruncation,
    DaqDisconnect,
    FaultChain,
    FaultModel,
    NanBurst,
    SampleRateSkew,
    Saturation,
)
from .campaign import (
    FaultCampaignResult,
    FaultCase,
    FaultCaseResult,
    default_fault_matrix,
    render_fault_table,
    run_fault_campaign,
)

__all__ = [
    "FaultModel",
    "FaultChain",
    "ChannelDropout",
    "NanBurst",
    "Saturation",
    "SampleRateSkew",
    "ChunkDuplication",
    "ChunkTruncation",
    "DaqDisconnect",
    "FaultCase",
    "FaultCaseResult",
    "FaultCampaignResult",
    "default_fault_matrix",
    "run_fault_campaign",
    "render_fault_table",
]
