"""Plain-text table rendering for the reproduced tables and figures."""

from __future__ import annotations

from typing import List, Mapping, Sequence

from .experiments import IdsResult

__all__ = [
    "format_table",
    "format_ids_table",
    "format_accuracy_ranking",
    "render_overhead_table",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "-" * len(line)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in cells
    ]
    return "\n".join([line, sep] + body)


def format_ids_table(
    results: Mapping[str, IdsResult],
    submodule_names: Sequence[str] = ("c_disp", "h_dist", "v_dist"),
    title: str = "",
) -> str:
    """Format per-cell IDS results in the paper's FPR / TPR style.

    ``results`` maps a row label (e.g. ``"UM3 Raw ACC"``) to its
    :class:`IdsResult`.
    """
    headers = ["Cell", "Overall"] + list(submodule_names) + ["Accuracy"]
    rows: List[List[object]] = []
    for label, result in results.items():
        row: List[object] = [label, result.cell()]
        for name in submodule_names:
            stats = result.submodules.get(name)
            row.append(stats.as_pair() if stats is not None else "-")
        row.append(f"{result.overall.accuracy:.2f}")
        rows.append(row)
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table


def format_accuracy_ranking(accuracies: Mapping[str, float]) -> str:
    """Fig. 12-style ranking: IDS name -> average accuracy, sorted."""
    ordered = sorted(accuracies.items(), key=lambda kv: kv[1])
    return format_table(
        ["IDS", "Avg accuracy"],
        [[name, f"{acc:.3f}"] for name, acc in ordered],
    )


def render_overhead_table(
    snapshot: Mapping[str, object], max_depth: int = 3
) -> str:
    """Table-10-style per-stage processing-time overhead from span stats.

    The paper's Table 10 reports, per sensor, how much processing time the
    IDS adds on top of acquisition.  This renders the reproduction's
    equivalent from an :func:`repro.obs.snapshot` document: one row per
    traced stage (indented by nesting depth), with call count, total and
    mean wall-clock time, total CPU time, and each *top-level* stage's
    share of the total top-level wall time.  ``max_depth`` trims the tree
    so deep per-window spans don't drown the per-stage story.
    """
    spans = snapshot.get("spans", {})
    if not isinstance(spans, Mapping) or not spans:
        return "(no spans recorded — run with REPRO_TRACE=1 or --trace)"

    names = [n for n in spans if n.count("/") < max_depth]
    # Sort siblings under their parents by walking names depth-first.
    names.sort()
    top_total = sum(
        spans[n]["wall_total_s"] for n in names if "/" not in n
    )

    rows: List[List[object]] = []
    for name in names:
        stats = spans[name]
        depth = name.count("/")
        label = "  " * depth + name.rsplit("/", 1)[-1]
        count = int(stats["count"])
        wall = float(stats["wall_total_s"])
        cpu = float(stats["cpu_total_s"])
        mean_ms = 1000.0 * wall / count if count else 0.0
        share = (
            f"{100.0 * wall / top_total:5.1f}%"
            if "/" not in name and top_total > 0
            else "-"
        )
        rows.append(
            [label, count, f"{wall:.3f}", f"{mean_ms:.2f}",
             f"{cpu:.3f}", share]
        )
    return format_table(
        ["Stage", "Calls", "Wall (s)", "Mean (ms)", "CPU (s)", "Share"],
        rows,
    )
