"""Plain-text table rendering for the reproduced tables and figures."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from .experiments import IdsResult

__all__ = ["format_table", "format_ids_table", "format_accuracy_ranking"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "-" * len(line)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in cells
    ]
    return "\n".join([line, sep] + body)


def format_ids_table(
    results: Mapping[str, IdsResult],
    submodule_names: Sequence[str] = ("c_disp", "h_dist", "v_dist"),
    title: str = "",
) -> str:
    """Format per-cell IDS results in the paper's FPR / TPR style.

    ``results`` maps a row label (e.g. ``"UM3 Raw ACC"``) to its
    :class:`IdsResult`.
    """
    headers = ["Cell", "Overall"] + list(submodule_names) + ["Accuracy"]
    rows: List[List[object]] = []
    for label, result in results.items():
        row: List[object] = [label, result.cell()]
        for name in submodule_names:
            stats = result.submodules.get(name)
            row.append(stats.as_pair() if stats is not None else "-")
        row.append(f"{result.overall.accuracy:.2f}")
        rows.append(row)
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table


def format_accuracy_ranking(accuracies: Mapping[str, float]) -> str:
    """Fig. 12-style ranking: IDS name -> average accuracy, sorted."""
    ordered = sorted(accuracies.items(), key=lambda kv: kv[1])
    return format_table(
        ["IDS", "Avg accuracy"],
        [[name, f"{acc:.3f}"] for name, acc in ordered],
    )
