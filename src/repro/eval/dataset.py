"""Campaign generation: the simulated equivalent of the paper's testbed.

The paper performed 151 benign and 100 malicious prints per printer
(Table I).  :func:`generate_campaign` reproduces that structure at a
configurable (much smaller by default) scale: one reference run, a training
set for OCC, a benign test set, and ``n_attack_runs`` runs of each Table I
attack — every run with fresh time noise and fresh sensor noise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..attacks.base import Attack, PrintJob
from ..attacks.gcode_attacks import TABLE_I_ATTACKS
from ..printer.firmware import simulate_print
from ..printer.machine import MachineConfig, ROSTOCK_MAX_V3, ULTIMAKER3
from ..printer.noise import TimeNoiseModel
from ..sensors.daq import DataAcquisition, default_daq
from ..signals.signal import Signal
from ..slicer.models import gear_outline
from ..slicer.slicer import SlicerConfig
from ..sync.dwm import DwmParams, RM3_DWM_PARAMS, UM3_DWM_PARAMS

__all__ = [
    "PrinterSetup",
    "ProcessRun",
    "Campaign",
    "default_setup",
    "generate_campaign",
    "reference_from_gcode",
    "run_process",
]


@dataclass(frozen=True)
class PrinterSetup:
    """A printer plus everything needed to run the evaluation on it."""

    key: str
    machine: MachineConfig
    dwm_params: DwmParams
    slicer_config: SlicerConfig
    noise: TimeNoiseModel
    center: Tuple[float, float]

    def job(self, outline: Optional[np.ndarray] = None) -> PrintJob:
        """Slice the (default: scaled-down paper gear) for this printer."""
        if outline is None:
            outline = gear_outline()
        return PrintJob.slice(outline, self.slicer_config, center=self.center)


@dataclass(frozen=True)
class ProcessRun:
    """One simulated printing process, observed through every side channel."""

    label: str
    is_malicious: bool
    signals: Dict[str, Signal]
    layer_times: Tuple[float, ...]
    duration: float


@dataclass(frozen=True)
class Campaign:
    """The full dataset for one printer: Table I at configurable scale."""

    setup: PrinterSetup
    reference: ProcessRun
    training: Tuple[ProcessRun, ...]
    benign_test: Tuple[ProcessRun, ...]
    malicious_test: Dict[str, Tuple[ProcessRun, ...]]

    @property
    def channels(self) -> Tuple[str, ...]:
        return tuple(self.reference.signals)

    @property
    def n_benign_test(self) -> int:
        return len(self.benign_test)

    @property
    def n_malicious_test(self) -> int:
        return sum(len(runs) for runs in self.malicious_test.values())

    def all_malicious(self) -> List[ProcessRun]:
        out: List[ProcessRun] = []
        for runs in self.malicious_test.values():
            out.extend(runs)
        return out


def default_setup(
    printer: str = "UM3",
    object_height: float = 0.6,
    infill_spacing: float = 6.0,
    noise: Optional[TimeNoiseModel] = None,
) -> PrinterSetup:
    """The evaluation configuration for one of the paper's two printers.

    ``object_height`` defaults to a thin 3-layer slice of the paper's
    7.5 mm gear so campaigns stay laptop-sized; pass 7.5 for the full part.
    """
    noise = noise if noise is not None else TimeNoiseModel()
    slicer_config = SlicerConfig(
        object_height=object_height, infill_spacing=infill_spacing
    )
    if printer.upper() == "UM3":
        return PrinterSetup(
            key="UM3",
            machine=ULTIMAKER3,
            dwm_params=UM3_DWM_PARAMS,
            slicer_config=slicer_config,
            noise=noise,
            center=(110.0, 110.0),
        )
    if printer.upper() == "RM3":
        # Table IV's RM3 search window (t_ext = 0.1 s) is tight relative to
        # our simulator's drift rate; following the paper's own procedure
        # ("if DWM is unable to converge, crank up [eta] until DWM
        # converges", Section VI-C) the evaluation uses eta = 0.3.
        return PrinterSetup(
            key="RM3",
            machine=ROSTOCK_MAX_V3,
            dwm_params=replace(RM3_DWM_PARAMS, eta=0.3),
            slicer_config=slicer_config,
            noise=noise,
            center=(0.0, 0.0),
        )
    raise ValueError(f"unknown printer {printer!r}; expected 'UM3' or 'RM3'")


def run_process(
    setup: PrinterSetup,
    job: PrintJob,
    label: str,
    is_malicious: bool,
    seed: int,
    daq: Optional[DataAcquisition] = None,
    channels: Optional[Sequence[str]] = None,
) -> ProcessRun:
    """Simulate one printing process and record its side channels."""
    daq = daq or default_daq()
    trace = simulate_print(job.program, setup.machine, setup.noise, seed=seed)
    signals = daq.acquire(
        trace, np.random.default_rng(seed + 7_919), channels=channels
    )
    return ProcessRun(
        label=label,
        is_malicious=is_malicious,
        signals=signals,
        layer_times=tuple(trace.layer_change_times),
        duration=trace.duration,
    )


def reference_from_gcode(
    setup: PrinterSetup,
    program,
    channel: str = "ACC",
    daq: Optional[DataAcquisition] = None,
) -> Signal:
    """Simulate a G-code file to obtain a reference signal (paper §IV).

    The paper lists two ways to acquire a trusted reference: certify a
    physical benign print, or *simulate the process from its G-code file*
    ([9], [12]).  This helper is the second way: a noiseless, nominal-speed
    execution of the program through the same sensor models.
    """
    from ..printer.noise import NO_TIME_NOISE

    daq = daq or default_daq()
    trace = simulate_print(program, setup.machine, NO_TIME_NOISE, seed=0)
    return daq.acquire(
        trace, np.random.default_rng(0), channels=[channel]
    )[channel]


def generate_campaign(
    setup: Optional[PrinterSetup] = None,
    channels: Sequence[str] = ("ACC", "MAG", "AUD", "EPT"),
    n_train: int = 10,
    n_benign_test: int = 10,
    attacks: Optional[Iterable[Attack]] = None,
    n_attack_runs: int = 2,
    seed: int = 0,
    daq: Optional[DataAcquisition] = None,
    workers: int = 0,
    cache=None,
    engine=None,
) -> Campaign:
    """Generate a full campaign (reference + training + test sets).

    The paper's full scale is ``n_train=50, n_benign_test=100,
    n_attack_runs=20`` per printer; the defaults here are a faithful but
    laptop-sized rendition of the same structure.

    Execution goes through a :class:`~repro.eval.engine.CampaignEngine`:
    ``workers`` fans the independent simulations out over processes (``0``
    keeps the serial in-process path), and ``cache`` (a directory path or
    :class:`~repro.cache.RunCache`) memoizes runs on disk.  Seeds are
    assigned from the sequential ``seq`` stream *before* dispatch, so every
    ``workers`` setting produces bit-identical signals.  Pass a
    pre-configured ``engine`` to share a cache/pool and read back its
    ``stats``; it overrides ``workers``/``cache``.
    """
    from .engine import CampaignEngine, RunRequest

    setup = setup or default_setup()
    attacks = list(attacks) if attacks is not None else TABLE_I_ATTACKS()
    daq = daq or default_daq()
    job = setup.job()

    seq = iter(range(seed * 1_000_003, seed * 1_000_003 + 10_000))

    # Build the request list in the exact order the serial implementation
    # consumed seeds: reference, training, benign test, then attack runs.
    requests = [RunRequest(setup, job, "Reference", False, next(seq))]
    requests += [
        RunRequest(setup, job, "Benign", False, next(seq))
        for _ in range(n_train)
    ]
    requests += [
        RunRequest(setup, job, "Benign", False, next(seq))
        for _ in range(n_benign_test)
    ]
    attack_names: List[str] = []
    for attack in attacks:
        attacked = attack.apply(job)
        attack_names.append(attack.name)
        requests += [
            RunRequest(setup, attacked, attack.name, True, next(seq))
            for _ in range(n_attack_runs)
        ]

    engine = engine or CampaignEngine(workers=workers, cache=cache)
    runs = engine.execute(requests, daq=daq, channels=channels)

    reference = runs[0]
    training = tuple(runs[1 : 1 + n_train])
    benign_test = tuple(runs[1 + n_train : 1 + n_train + n_benign_test])
    malicious: Dict[str, Tuple[ProcessRun, ...]] = {}
    cursor = 1 + n_train + n_benign_test
    for name in attack_names:
        malicious[name] = tuple(runs[cursor : cursor + n_attack_runs])
        cursor += n_attack_runs
    return Campaign(
        setup=setup,
        reference=reference,
        training=training,
        benign_test=benign_test,
        malicious_test=malicious,
    )
