"""Campaign generation: the simulated equivalent of the paper's testbed.

The paper performed 151 benign and 100 malicious prints per printer
(Table I).  :func:`generate_campaign` reproduces that structure at a
configurable (much smaller by default) scale: one reference run, a training
set for OCC, a benign test set, and ``n_attack_runs`` runs of each Table I
attack — every run with fresh time noise and fresh sensor noise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..attacks.base import Attack, PrintJob
from ..attacks.gcode_attacks import TABLE_I_ATTACKS
from ..printer.firmware import simulate_print
from ..printer.machine import MachineConfig, ROSTOCK_MAX_V3, ULTIMAKER3
from ..printer.noise import TimeNoiseModel
from ..sensors.daq import DataAcquisition, default_daq
from ..signals.signal import Signal
from ..slicer.models import gear_outline
from ..slicer.slicer import SlicerConfig
from ..sync.dwm import DwmParams, RM3_DWM_PARAMS, UM3_DWM_PARAMS

__all__ = [
    "PrinterSetup",
    "ProcessRun",
    "Campaign",
    "CampaignPlan",
    "campaign_requests",
    "default_setup",
    "generate_campaign",
    "reference_from_gcode",
    "run_process",
]


@dataclass(frozen=True)
class PrinterSetup:
    """A printer plus everything needed to run the evaluation on it."""

    key: str
    machine: MachineConfig
    dwm_params: DwmParams
    slicer_config: SlicerConfig
    noise: TimeNoiseModel
    center: Tuple[float, float]

    def job(self, outline: Optional[np.ndarray] = None) -> PrintJob:
        """Slice the (default: scaled-down paper gear) for this printer."""
        if outline is None:
            outline = gear_outline()
        return PrintJob.slice(outline, self.slicer_config, center=self.center)


@dataclass(frozen=True)
class ProcessRun:
    """One simulated printing process, observed through every side channel."""

    label: str
    is_malicious: bool
    signals: Dict[str, Signal]
    layer_times: Tuple[float, ...]
    duration: float


@dataclass(frozen=True)
class CampaignPlan:
    """Everything needed to (re-)execute a campaign's runs on demand.

    The lazy backing of :class:`Campaign`: the ordered request list plus
    the engine/DAQ to execute it through.  With a warm
    :class:`~repro.cache.RunCache` behind the engine, "executing" a run is
    a metadata read + memmap open, so a plan-backed campaign can be swept
    over many times (one pass per evaluation cell) without ever holding
    more than one run's working set in memory.
    """

    setup: PrinterSetup
    requests: Tuple["RunRequest", ...]  # noqa: F821 - engine import cycle
    attack_names: Tuple[str, ...]
    n_train: int
    n_benign_test: int
    n_attack_runs: int
    channels: Optional[Tuple[str, ...]]
    engine: object  # CampaignEngine (kept loose: engine imports dataset)
    daq: DataAcquisition

    def run_at(self, index: int) -> ProcessRun:
        """Execute (typically: load from cache) one run by stream index."""
        pair = next(
            iter(
                self.engine.iter_execute(
                    [self.requests[index]],
                    daq=self.daq,
                    channels=self.channels,
                )
            )
        )
        return pair[1]

    def iter_runs(self) -> Iterator[Tuple[str, ProcessRun]]:
        """Stream every run, in order, tagged with its campaign role."""
        stream = self.engine.iter_execute(
            self.requests, daq=self.daq, channels=self.channels
        )
        for index, (_request, run) in enumerate(stream):
            yield self.role_of(index), run

    def role_of(self, index: int) -> str:
        """The campaign role of stream position ``index``."""
        if index == 0:
            return "reference"
        if index <= self.n_train:
            return "training"
        if index <= self.n_train + self.n_benign_test:
            return "benign"
        return "malicious"


class _RunView(Sequence):
    """A read-only run sequence backed by a :class:`CampaignPlan` slice.

    Indexing executes exactly the requested run through the plan's engine
    (a cache hit on any warmed campaign); nothing is retained between
    accesses, so iterating a view never accumulates run payloads.
    """

    __slots__ = ("_plan", "_start", "_count")

    def __init__(self, plan: CampaignPlan, start: int, count: int) -> None:
        self._plan = plan
        self._start = start
        self._count = count

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(index)
        return self._plan.run_at(self._start + index)

    def __repr__(self) -> str:
        return f"_RunView({self._count} runs @ {self._start})"


class Campaign:
    """The full dataset for one printer: Table I at configurable scale.

    Two backings share this one interface:

    * **Eager** — constructed with materialized runs (the historical
      shape): ``Campaign(setup, reference=..., training=...,
      benign_test=..., malicious_test=...)``.
    * **Lazy** — constructed from a :class:`CampaignPlan`
      (``Campaign(setup, plan=plan)``, via
      ``generate_campaign(..., materialize=False)``): ``training`` /
      ``benign_test`` / ``malicious_test`` become on-demand views that
      execute runs through the plan's engine as they are indexed, and
      :meth:`iter_runs` streams the whole campaign through
      :meth:`~repro.eval.engine.CampaignEngine.iter_execute` without ever
      materializing it.

    Existing call sites (``campaign.benign_test[0]``,
    ``for run in campaign.training``, ``campaign.all_malicious()``) work
    identically on both.
    """

    def __init__(
        self,
        setup: PrinterSetup,
        reference: Optional[ProcessRun] = None,
        training: Sequence[ProcessRun] = (),
        benign_test: Sequence[ProcessRun] = (),
        malicious_test: Optional[Dict[str, Tuple[ProcessRun, ...]]] = None,
        *,
        plan: Optional[CampaignPlan] = None,
    ) -> None:
        self.setup = setup
        self.plan = plan
        self._reference = reference
        if plan is None:
            if reference is None:
                raise TypeError(
                    "an eager Campaign needs a reference run "
                    "(or pass plan=... for a lazy campaign)"
                )
            self._training: Sequence[ProcessRun] = tuple(training)
            self._benign_test: Sequence[ProcessRun] = tuple(benign_test)
            self._malicious_test: Dict[str, Sequence[ProcessRun]] = dict(
                malicious_test or {}
            )
        else:
            n_train, n_test = plan.n_train, plan.n_benign_test
            self._training = _RunView(plan, 1, n_train)
            self._benign_test = _RunView(plan, 1 + n_train, n_test)
            cursor = 1 + n_train + n_test
            views: Dict[str, Sequence[ProcessRun]] = {}
            for name in plan.attack_names:
                views[name] = _RunView(plan, cursor, plan.n_attack_runs)
                cursor += plan.n_attack_runs
            self._malicious_test = views

    # -- the historical attribute surface ----------------------------------
    @property
    def reference(self) -> ProcessRun:
        if self._reference is None:
            # Memoized: the reference anchors every evaluation pass, so a
            # lazy campaign resolves it once (a cache hit when warmed).
            self._reference = self.plan.run_at(0)
        return self._reference

    @property
    def training(self) -> Sequence[ProcessRun]:
        return self._training

    @property
    def benign_test(self) -> Sequence[ProcessRun]:
        return self._benign_test

    @property
    def malicious_test(self) -> Dict[str, Sequence[ProcessRun]]:
        return self._malicious_test

    @property
    def channels(self) -> Tuple[str, ...]:
        return tuple(self.reference.signals)

    @property
    def n_benign_test(self) -> int:
        return len(self.benign_test)

    @property
    def n_malicious_test(self) -> int:
        return sum(len(runs) for runs in self.malicious_test.values())

    def all_malicious(self) -> List[ProcessRun]:
        out: List[ProcessRun] = []
        for runs in self.malicious_test.values():
            out.extend(runs)
        return out

    # -- streaming ---------------------------------------------------------
    def iter_runs(self) -> Iterator[Tuple[str, ProcessRun]]:
        """Stream ``(role, run)`` over the whole campaign, in order.

        Roles are ``"reference"``, ``"training"``, ``"benign"``, and
        ``"malicious"`` — emitted in exactly that order, so a streaming
        consumer can finish training before the first test run arrives.
        A lazy campaign streams through the engine (each run held only for
        its own iteration); an eager one yields its stored runs.
        """
        if self.plan is not None:
            yield from self.plan.iter_runs()
            return
        yield "reference", self.reference
        for run in self.training:
            yield "training", run
        for run in self.benign_test:
            yield "benign", run
        for runs in self.malicious_test.values():
            for run in runs:
                yield "malicious", run


def default_setup(
    printer: str = "UM3",
    object_height: float = 0.6,
    infill_spacing: float = 6.0,
    noise: Optional[TimeNoiseModel] = None,
) -> PrinterSetup:
    """The evaluation configuration for one of the paper's two printers.

    ``object_height`` defaults to a thin 3-layer slice of the paper's
    7.5 mm gear so campaigns stay laptop-sized; pass 7.5 for the full part.
    """
    noise = noise if noise is not None else TimeNoiseModel()
    slicer_config = SlicerConfig(
        object_height=object_height, infill_spacing=infill_spacing
    )
    if printer.upper() == "UM3":
        return PrinterSetup(
            key="UM3",
            machine=ULTIMAKER3,
            dwm_params=UM3_DWM_PARAMS,
            slicer_config=slicer_config,
            noise=noise,
            center=(110.0, 110.0),
        )
    if printer.upper() == "RM3":
        # Table IV's RM3 search window (t_ext = 0.1 s) is tight relative to
        # our simulator's drift rate; following the paper's own procedure
        # ("if DWM is unable to converge, crank up [eta] until DWM
        # converges", Section VI-C) the evaluation uses eta = 0.3.
        return PrinterSetup(
            key="RM3",
            machine=ROSTOCK_MAX_V3,
            dwm_params=replace(RM3_DWM_PARAMS, eta=0.3),
            slicer_config=slicer_config,
            noise=noise,
            center=(0.0, 0.0),
        )
    raise ValueError(f"unknown printer {printer!r}; expected 'UM3' or 'RM3'")


def run_process(
    setup: PrinterSetup,
    job: PrintJob,
    label: str,
    is_malicious: bool,
    seed: int,
    daq: Optional[DataAcquisition] = None,
    channels: Optional[Sequence[str]] = None,
) -> ProcessRun:
    """Simulate one printing process and record its side channels."""
    daq = daq or default_daq()
    trace = simulate_print(job.program, setup.machine, setup.noise, seed=seed)
    signals = daq.acquire(
        trace, np.random.default_rng(seed + 7_919), channels=channels
    )
    return ProcessRun(
        label=label,
        is_malicious=is_malicious,
        signals=signals,
        layer_times=tuple(trace.layer_change_times),
        duration=trace.duration,
    )


def reference_from_gcode(
    setup: PrinterSetup,
    program,
    channel: str = "ACC",
    daq: Optional[DataAcquisition] = None,
) -> Signal:
    """Simulate a G-code file to obtain a reference signal (paper §IV).

    The paper lists two ways to acquire a trusted reference: certify a
    physical benign print, or *simulate the process from its G-code file*
    ([9], [12]).  This helper is the second way: a noiseless, nominal-speed
    execution of the program through the same sensor models.
    """
    from ..printer.noise import NO_TIME_NOISE

    daq = daq or default_daq()
    trace = simulate_print(program, setup.machine, NO_TIME_NOISE, seed=0)
    return daq.acquire(
        trace, np.random.default_rng(0), channels=[channel]
    )[channel]


def campaign_requests(
    setup: PrinterSetup,
    job: Optional[PrintJob] = None,
    n_train: int = 10,
    n_benign_test: int = 10,
    attacks: Optional[Iterable[Attack]] = None,
    n_attack_runs: int = 2,
    seed: int = 0,
) -> Tuple[Tuple["RunRequest", ...], Tuple[str, ...]]:  # noqa: F821
    """Build the ordered campaign request list with seeds pre-assigned.

    Returns ``(requests, attack_names)``.  Seeds come from an *unbounded*
    sequential stream (``itertools.count(seed * 1_000_003)``) consumed in
    the exact order the serial implementation always has — reference,
    training, benign test, then attack runs — so existing campaigns keep
    their exact seed assignment while paper-scale (and larger) campaigns
    no longer hit the historical 10,000-seed ceiling.
    """
    from .engine import RunRequest

    job = job if job is not None else setup.job()
    attacks = list(attacks) if attacks is not None else TABLE_I_ATTACKS()
    seq = itertools.count(seed * 1_000_003)

    requests = [RunRequest(setup, job, "Reference", False, next(seq))]
    requests += [
        RunRequest(setup, job, "Benign", False, next(seq))
        for _ in range(n_train)
    ]
    requests += [
        RunRequest(setup, job, "Benign", False, next(seq))
        for _ in range(n_benign_test)
    ]
    attack_names: List[str] = []
    for attack in attacks:
        attacked = attack.apply(job)
        attack_names.append(attack.name)
        requests += [
            RunRequest(setup, attacked, attack.name, True, next(seq))
            for _ in range(n_attack_runs)
        ]
    return tuple(requests), tuple(attack_names)


def generate_campaign(
    setup: Optional[PrinterSetup] = None,
    channels: Sequence[str] = ("ACC", "MAG", "AUD", "EPT"),
    n_train: int = 10,
    n_benign_test: int = 10,
    attacks: Optional[Iterable[Attack]] = None,
    n_attack_runs: int = 2,
    seed: int = 0,
    daq: Optional[DataAcquisition] = None,
    workers: int = 0,
    cache=None,
    engine=None,
    materialize: bool = True,
) -> Campaign:
    """Generate a full campaign (reference + training + test sets).

    The paper's full scale is ``n_train=50, n_benign_test=100,
    n_attack_runs=20`` per printer; the defaults here are a faithful but
    laptop-sized rendition of the same structure.

    Execution goes through a :class:`~repro.eval.engine.CampaignEngine`:
    ``workers`` fans the independent simulations out over processes (``0``
    keeps the serial in-process path), and ``cache`` (a directory path or
    :class:`~repro.cache.RunCache`) memoizes runs on disk.  Seeds are
    assigned from the sequential stream *before* dispatch
    (:func:`campaign_requests`), so every ``workers`` setting produces
    bit-identical signals.  Pass a pre-configured ``engine`` to share a
    cache/pool and read back its ``stats``; it overrides
    ``workers``/``cache``.

    ``materialize=False`` returns a *lazy* campaign backed by a
    :class:`CampaignPlan`: no run is executed up front, and evaluation
    passes stream runs through the engine one at a time
    (:meth:`Campaign.iter_runs`).  Attach a cache when the campaign will
    be swept more than once — each pass re-resolves runs through the
    engine, which is only cheap when it hits.
    """
    from .engine import CampaignEngine

    setup = setup or default_setup()
    daq = daq or default_daq()
    job = setup.job()
    requests, attack_names = campaign_requests(
        setup,
        job=job,
        n_train=n_train,
        n_benign_test=n_benign_test,
        attacks=attacks,
        n_attack_runs=n_attack_runs,
        seed=seed,
    )
    engine = engine or CampaignEngine(workers=workers, cache=cache)
    plan = CampaignPlan(
        setup=setup,
        requests=requests,
        attack_names=attack_names,
        n_train=n_train,
        n_benign_test=n_benign_test,
        n_attack_runs=n_attack_runs,
        channels=tuple(channels) if channels is not None else None,
        engine=engine,
        daq=daq,
    )
    if not materialize:
        return Campaign(setup, plan=plan)

    runs = engine.execute(requests, daq=daq, channels=channels)
    reference = runs[0]
    training = tuple(runs[1 : 1 + n_train])
    benign_test = tuple(runs[1 + n_train : 1 + n_train + n_benign_test])
    malicious: Dict[str, Tuple[ProcessRun, ...]] = {}
    cursor = 1 + n_train + n_benign_test
    for name in attack_names:
        malicious[name] = tuple(runs[cursor : cursor + n_attack_runs])
        cursor += n_attack_runs
    return Campaign(
        setup=setup,
        reference=reference,
        training=training,
        benign_test=benign_test,
        malicious_test=malicious,
    )
