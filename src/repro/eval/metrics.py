"""Detection metrics: FPR, TPR, and the paper's accuracy definition.

The paper reports results as "FPR / TPR" pairs and defines accuracy as the
fraction of correctly identified processes; with balanced test sets this is
``((1 - FPR) + TPR) / 2`` (Section VIII-F).

Beyond the per-configuration :class:`DetectionStats`, this module holds the
*streaming accumulators* the campaign evaluation path aggregates through:
:class:`IdsAccumulator` (overall + per-submodule + per-attack confusion
counts, one ``record`` per classified run) and :class:`RocAccumulator`
(per-``r`` confusion counts for a whole ROC sweep in a single pass).
Confusion counts are commutative sums, so an evaluation folded run-by-run
through an accumulator is float-for-float identical to one computed over a
fully materialized campaign — which is what lets ``nsync_results`` /
``baseline_results`` / ``roc_sweep`` consume a lazy run stream without a
full-campaign list anywhere on the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DetectionStats",
    "IdsAccumulator",
    "RocAccumulator",
    "accuracy_from_rates",
]


def accuracy_from_rates(fpr: float, tpr: float) -> float:
    """Balanced accuracy from the two error rates (paper Section VIII-F)."""
    return ((1.0 - fpr) + tpr) / 2.0


@dataclass
class DetectionStats:
    """Running confusion counts for one IDS configuration."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    def record(self, is_malicious: bool, detected: bool) -> None:
        """Add one classified process."""
        if is_malicious and detected:
            self.true_positives += 1
        elif is_malicious:
            self.false_negatives += 1
        elif detected:
            self.false_positives += 1
        else:
            self.true_negatives += 1

    def record_all(self, labels_and_verdicts: Iterable[tuple]) -> None:
        for is_malicious, detected in labels_and_verdicts:
            self.record(is_malicious, detected)

    @property
    def n_benign(self) -> int:
        return self.false_positives + self.true_negatives

    @property
    def n_malicious(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def fpr(self) -> float:
        """False-positive rate; 0 when no benign processes were seen."""
        return self.false_positives / self.n_benign if self.n_benign else 0.0

    @property
    def tpr(self) -> float:
        """True-positive rate; 0 when no malicious processes were seen."""
        return self.true_positives / self.n_malicious if self.n_malicious else 0.0

    @property
    def accuracy(self) -> float:
        """Balanced accuracy, the paper's headline metric."""
        return accuracy_from_rates(self.fpr, self.tpr)

    def as_pair(self) -> str:
        """The paper's "FPR / TPR" cell format."""
        return f"{self.fpr:.2f} / {self.tpr:.2f}"

    def __str__(self) -> str:
        return (
            f"FPR={self.fpr:.2f} TPR={self.tpr:.2f} acc={self.accuracy:.2f} "
            f"(benign={self.n_benign}, malicious={self.n_malicious})"
        )


class IdsAccumulator:
    """Streaming aggregation of one IDS's verdicts over a run stream.

    One :meth:`record` call per classified run maintains the overall
    confusion counts, the per-submodule counts (would each sub-module have
    fired *alone*?), and the per-attack counts behind the paper's TPR
    column — without retaining the run or its features.

    ``submodule_names`` pre-registers submodules so they appear (at zero)
    even when they never fire; submodules first seen in ``flags`` are added
    on the fly, which is what the prior-work baselines rely on.
    """

    def __init__(self, submodule_names: Sequence[str] = ()) -> None:
        self.overall = DetectionStats()
        self.submodules: Dict[str, DetectionStats] = {
            name: DetectionStats() for name in submodule_names
        }
        self.per_attack: Dict[str, DetectionStats] = {}

    def record(
        self,
        label: str,
        is_malicious: bool,
        flags: Dict[str, bool],
        fired: Optional[bool] = None,
    ) -> bool:
        """Fold one classified run in; returns the overall verdict.

        ``fired`` defaults to ``any(flags.values())`` — pass it explicitly
        for IDSs whose overall verdict is not the OR of their submodules.
        """
        if fired is None:
            fired = any(flags.values())
        self.overall.record(is_malicious, fired)
        for name, flag in flags.items():
            self.submodules.setdefault(name, DetectionStats()).record(
                is_malicious, flag
            )
        if is_malicious:
            self.per_attack.setdefault(label, DetectionStats()).record(
                True, fired
            )
        return fired

    @property
    def per_attack_tpr(self) -> Dict[str, float]:
        """Detection rate per attack label (the paper's TPR column)."""
        return {name: s.tpr for name, s in self.per_attack.items()}


class RocAccumulator:
    """Streaming ROC sweep: per-``r`` confusion counts in a single pass.

    The caller computes, for each test run, whether the IDS fires at every
    margin ``r`` (thresholds are derived once from the finished training
    stream), and folds the verdict map in with :meth:`record`.  No feature
    or run list is retained, so the sweep's memory footprint is the number
    of ``r`` values — not the number of runs.
    """

    def __init__(self, r_values: Iterable[float]) -> None:
        self.r_values: Tuple[float, ...] = tuple(
            sorted(float(r) for r in r_values)
        )
        if not self.r_values:
            raise ValueError("r_values must not be empty")
        self.stats: Dict[float, DetectionStats] = {
            r: DetectionStats() for r in self.r_values
        }

    def record(
        self, is_malicious: bool, fired_by_r: Dict[float, bool]
    ) -> None:
        """Fold one classified run in (one verdict per ``r`` value)."""
        for r, fired in fired_by_r.items():
            self.stats[float(r)].record(is_malicious, fired)

    def points(self) -> List[Tuple[float, DetectionStats]]:
        """``(r, stats)`` pairs ordered by increasing ``r``."""
        return [(r, self.stats[r]) for r in self.r_values]
