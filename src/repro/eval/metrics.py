"""Detection metrics: FPR, TPR, and the paper's accuracy definition.

The paper reports results as "FPR / TPR" pairs and defines accuracy as the
fraction of correctly identified processes; with balanced test sets this is
``((1 - FPR) + TPR) / 2`` (Section VIII-F).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["DetectionStats", "accuracy_from_rates"]


def accuracy_from_rates(fpr: float, tpr: float) -> float:
    """Balanced accuracy from the two error rates (paper Section VIII-F)."""
    return ((1.0 - fpr) + tpr) / 2.0


@dataclass
class DetectionStats:
    """Running confusion counts for one IDS configuration."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    def record(self, is_malicious: bool, detected: bool) -> None:
        """Add one classified process."""
        if is_malicious and detected:
            self.true_positives += 1
        elif is_malicious:
            self.false_negatives += 1
        elif detected:
            self.false_positives += 1
        else:
            self.true_negatives += 1

    def record_all(self, labels_and_verdicts: Iterable[tuple]) -> None:
        for is_malicious, detected in labels_and_verdicts:
            self.record(is_malicious, detected)

    @property
    def n_benign(self) -> int:
        return self.false_positives + self.true_negatives

    @property
    def n_malicious(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def fpr(self) -> float:
        """False-positive rate; 0 when no benign processes were seen."""
        return self.false_positives / self.n_benign if self.n_benign else 0.0

    @property
    def tpr(self) -> float:
        """True-positive rate; 0 when no malicious processes were seen."""
        return self.true_positives / self.n_malicious if self.n_malicious else 0.0

    @property
    def accuracy(self) -> float:
        """Balanced accuracy, the paper's headline metric."""
        return accuracy_from_rates(self.fpr, self.tpr)

    def as_pair(self) -> str:
        """The paper's "FPR / TPR" cell format."""
        return f"{self.fpr:.2f} / {self.tpr:.2f}"

    def __str__(self) -> str:
        return (
            f"FPR={self.fpr:.2f} TPR={self.tpr:.2f} acc={self.accuracy:.2f} "
            f"(benign={self.n_benign}, malicious={self.n_malicious})"
        )
