"""Evaluation harness: campaign generation, metrics, experiment drivers."""

from .dataset import (
    Campaign,
    PrinterSetup,
    ProcessRun,
    default_setup,
    generate_campaign,
    reference_from_gcode,
    run_process,
)
from .engine import CampaignEngine, EngineStats, RunRequest, default_workers
from .forensics import (
    Incident,
    alarm_time_span,
    incident_from_events,
    localization_rows,
    render_incident_report,
    render_localization_table,
    spans_overlap,
)
from .metrics import DetectionStats, accuracy_from_rates
from .experiments import (
    BASELINE_FACTORIES,
    IdsResult,
    baseline_results,
    fig1_time_noise,
    fig2_unsynced_distances,
    fig6_parametric_analysis,
    fig10_hdisp_consistency,
    fig11_time_ratio,
    fig12_overall_accuracy,
    nsync_results,
    transform_signal,
)
from .reporting import (
    format_accuracy_ranking,
    format_ids_table,
    format_table,
    render_overhead_table,
)
from .roc import RocCurve, RocPoint, auc, roc_sweep

__all__ = [
    "Campaign",
    "PrinterSetup",
    "ProcessRun",
    "default_setup",
    "generate_campaign",
    "reference_from_gcode",
    "run_process",
    "CampaignEngine",
    "EngineStats",
    "RunRequest",
    "default_workers",
    "Incident",
    "alarm_time_span",
    "incident_from_events",
    "localization_rows",
    "render_incident_report",
    "render_localization_table",
    "spans_overlap",
    "DetectionStats",
    "accuracy_from_rates",
    "BASELINE_FACTORIES",
    "IdsResult",
    "baseline_results",
    "fig1_time_noise",
    "fig2_unsynced_distances",
    "fig6_parametric_analysis",
    "fig10_hdisp_consistency",
    "fig11_time_ratio",
    "fig12_overall_accuracy",
    "nsync_results",
    "transform_signal",
    "format_accuracy_ranking",
    "format_ids_table",
    "format_table",
    "render_overhead_table",
    "RocCurve",
    "RocPoint",
    "auc",
    "roc_sweep",
]
