"""Campaign execution engine: parallel fan-out + content-addressed caching.

A campaign is an embarrassingly parallel workload: every
:func:`~repro.eval.dataset.run_process` call is a pure function of
``(setup, job, seed, daq, channels)``.  The engine exploits that twice:

* **Parallelism** — requests fan out over a ``ProcessPoolExecutor``.  Seeds
  are drawn from the campaign's sequential ``seq`` stream *before* dispatch,
  so a parallel campaign consumes exactly the seed assignment of the serial
  one and produces bit-identical :class:`~repro.eval.dataset.ProcessRun`
  signals regardless of worker count or completion order.  ``workers=0``
  (the default) keeps a pure in-process serial path with no executor, no
  pickling, and full visibility to ``monkeypatch``-style instrumentation.
* **Memoization** — with a :class:`~repro.cache.RunCache` attached, each
  request is first looked up by its content address
  (:func:`~repro.cache.run_cache_key`); hits skip ``simulate_print``
  entirely and misses are written back after simulation.  Labels are not
  part of the key: the same physics is reusable under any label.

The engine is the single chokepoint through which
:func:`~repro.eval.dataset.generate_campaign`, the CLI ``campaign`` /
``report`` commands, and the benchmark harness all execute runs, so cached
campaigns are shared across every consumer.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..obs import events
from ..attacks.base import PrintJob
from ..cache import RunCache, resolve_cache, run_cache_key
from ..sensors.daq import DataAcquisition, default_daq
from .dataset import PrinterSetup, ProcessRun, run_process

__all__ = ["RunRequest", "EngineStats", "CampaignEngine", "default_workers"]


def default_workers() -> int:
    """CPU count minus one (never negative): leave a core for the parent."""
    return max(0, (os.cpu_count() or 1) - 1)


@dataclass(frozen=True)
class RunRequest:
    """One process simulation to execute, with its seed already assigned."""

    setup: PrinterSetup
    job: PrintJob
    label: str
    is_malicious: bool
    seed: int


@dataclass
class EngineStats:
    """Observability counters for one engine lifetime."""

    cache_hits: int = 0
    cache_misses: int = 0
    simulated: int = 0
    elapsed: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated": self.simulated,
            "elapsed": self.elapsed,
        }


def _execute_indexed(
    args: Tuple[
        int, RunRequest, DataAcquisition, Optional[Tuple[str, ...]], bool
    ]
) -> Tuple[int, ProcessRun, Optional[Dict[str, object]]]:
    """Worker entry point: simulate one request (picklable, order-tagged).

    With ``record=True`` (the parent had observability enabled) the worker
    re-enables recording in its own process — child processes start with
    the module-level switch off — and ships its registry state back with
    the result so the parent can fold it in
    (:meth:`~repro.obs.metrics.MetricsRegistry.merge_state`).  The
    registry is reset *before* the task because pool workers are reused:
    without the reset a long-lived worker would re-ship its whole history
    with every task and the parent would double-count.  Must stay
    ``False`` on the serial in-process path, where the reset would wipe
    the caller's own registry.
    """
    index, request, daq, channels, record = args
    if record:
        obs.reset()
        obs.enable()
    run = run_process(
        request.setup,
        request.job,
        request.label,
        request.is_malicious,
        request.seed,
        daq=daq,
        channels=channels,
    )
    state = obs.registry().state_dict() if record else None
    return index, run, state


class CampaignEngine:
    """Executes batches of :class:`RunRequest` with caching + parallelism.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``0`` (default) runs serially in the
        calling process; ``>= 2`` fans out over a ``ProcessPoolExecutor``.
        ``1`` behaves like ``0`` (a one-worker pool only adds overhead).
    cache:
        ``None`` (no caching), a directory path, or a ready
        :class:`~repro.cache.RunCache`.
    """

    def __init__(
        self,
        workers: int = 0,
        cache: Union[RunCache, str, "os.PathLike", None] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = int(workers)
        self.cache = resolve_cache(cache)
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    def execute(
        self,
        requests: Sequence[RunRequest],
        daq: Optional[DataAcquisition] = None,
        channels: Optional[Sequence[str]] = None,
    ) -> List[ProcessRun]:
        """Run every request; results keep the order of ``requests``."""
        t0 = time.perf_counter()
        daq = daq or default_daq()
        wanted = tuple(channels) if channels is not None else None
        results: List[Optional[ProcessRun]] = [None] * len(requests)
        emit = events.enabled()
        if emit:
            events.emit("engine_batch_start", n_requests=len(requests))
        hits0, misses0 = self.stats.cache_hits, self.stats.cache_misses

        with obs.trace("repro.eval.engine.execute"):
            # 1) Cache lookups (always in the parent: hits never reach a
            #    worker).
            pending: List[Tuple[int, Optional[str]]] = []
            with obs.trace("cache_lookup"):
                for i, request in enumerate(requests):
                    key: Optional[str] = None
                    if self.cache is not None:
                        key = run_cache_key(
                            request.job.program,
                            request.setup.machine,
                            request.setup.noise,
                            daq,
                            wanted,
                            request.seed,
                        )
                        payload = self.cache.get(key)
                        if payload is not None:
                            signals, layer_times, duration = payload
                            results[i] = ProcessRun(
                                label=request.label,
                                is_malicious=request.is_malicious,
                                signals=signals,
                                layer_times=layer_times,
                                duration=duration,
                            )
                            self.stats.cache_hits += 1
                            obs.counter(
                                "repro.eval.engine.cache_hits"
                            ).inc()
                            if emit:
                                events.emit(
                                    "engine_run",
                                    index=i,
                                    label=request.label,
                                    source="cache",
                                    key=key,
                                    seed=request.seed,
                                )
                            continue
                        self.stats.cache_misses += 1
                        obs.counter("repro.eval.engine.cache_misses").inc()
                    if emit:
                        events.emit(
                            "engine_run",
                            index=i,
                            label=request.label,
                            source="simulated",
                            key=key,
                            seed=request.seed,
                        )
                    pending.append((i, key))

            # 2) Simulate the misses — fanned out or serial.  The queue-wait
            # histogram observes, per task, the time from dispatching the
            # batch to that task's result arriving: a flat profile means
            # workers drained the queue evenly, a long tail means stragglers.
            record = obs.enabled()
            with obs.trace("simulate"):
                if self.workers >= 2 and len(pending) > 1:
                    tasks = [
                        (i, requests[i], daq, wanted, record)
                        for i, _ in pending
                    ]
                    max_workers = min(self.workers, len(tasks))
                    with ProcessPoolExecutor(max_workers=max_workers) as pool:
                        t_dispatch = time.perf_counter()
                        for index, run, state in pool.map(
                            _execute_indexed, tasks
                        ):
                            results[index] = run
                            if state is not None:
                                # Fold the worker's per-task registry into
                                # the parent: counters add, histograms
                                # concatenate, spans merge.
                                obs.registry().merge_state(state)
                            if record:
                                obs.histogram(
                                    "repro.eval.engine.queue_wait_s"
                                ).observe(time.perf_counter() - t_dispatch)
                else:
                    for i, _ in pending:
                        t_task = time.perf_counter()
                        # record=False: the serial path runs in-process, so
                        # metrics land in this registry directly.
                        _, run, _state = _execute_indexed(
                            (i, requests[i], daq, wanted, False)
                        )
                        results[i] = run
                        if record:
                            obs.histogram(
                                "repro.eval.engine.queue_wait_s"
                            ).observe(time.perf_counter() - t_task)
            self.stats.simulated += len(pending)
            obs.counter("repro.eval.engine.simulated").inc(len(pending))

            # 3) Write the fresh results back under their content addresses.
            with obs.trace("cache_write"):
                if self.cache is not None:
                    for i, key in pending:
                        run = results[i]
                        assert key is not None and run is not None
                        self.cache.put(
                            key, run.signals, run.layer_times, run.duration
                        )

        elapsed = time.perf_counter() - t0
        self.stats.elapsed += elapsed
        if emit:
            events.emit(
                "engine_batch_end",
                simulated=len(pending),
                cache_hits=self.stats.cache_hits - hits0,
                cache_misses=self.stats.cache_misses - misses0,
                elapsed=elapsed,
            )
        return [r for r in results if r is not None]
