"""Campaign execution engine: parallel fan-out + content-addressed caching.

A campaign is an embarrassingly parallel workload: every
:func:`~repro.eval.dataset.run_process` call is a pure function of
``(setup, job, seed, daq, channels)``.  The engine exploits that twice:

* **Parallelism** — requests fan out over a ``ProcessPoolExecutor``.  Seeds
  are drawn from the campaign's sequential ``seq`` stream *before* dispatch,
  so a parallel campaign consumes exactly the seed assignment of the serial
  one and produces bit-identical :class:`~repro.eval.dataset.ProcessRun`
  signals regardless of worker count or completion order.  ``workers=0``
  (the default) keeps a pure in-process serial path with no executor, no
  pickling, and full visibility to ``monkeypatch``-style instrumentation.
* **Memoization** — with a :class:`~repro.cache.RunCache` attached, each
  request is first looked up by its content address
  (:func:`~repro.cache.run_cache_key`); hits skip ``simulate_print``
  entirely and misses are written back after simulation.  Labels are not
  part of the key: the same physics is reusable under any label.

The engine is the single chokepoint through which
:func:`~repro.eval.dataset.generate_campaign`, the CLI ``campaign`` /
``report`` commands, and the benchmark harness all execute runs, so cached
campaigns are shared across every consumer.

Two execution modes share one implementation: :meth:`CampaignEngine.execute`
collects every run into a list (the historical API, bit-identical), while
:meth:`CampaignEngine.iter_execute` *streams* ``(request, run)`` pairs in
request order as workers finish — cache hits arrive as memmap-backed lazy
payloads, misses fan out over a persistent pool under a bounded in-flight
window, and a consumer that aggregates incrementally holds O(1) runs in
memory no matter how large the campaign is.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..obs import events
from ..attacks.base import PrintJob
from ..cache import RunCache, resolve_cache, run_cache_key
from ..sensors.daq import DataAcquisition, default_daq
from .dataset import PrinterSetup, ProcessRun, run_process

__all__ = ["RunRequest", "EngineStats", "CampaignEngine", "default_workers"]


def default_workers() -> int:
    """CPU count minus one (never negative): leave a core for the parent."""
    return max(0, (os.cpu_count() or 1) - 1)


@dataclass(frozen=True)
class RunRequest:
    """One process simulation to execute, with its seed already assigned."""

    setup: PrinterSetup
    job: PrintJob
    label: str
    is_malicious: bool
    seed: int


@dataclass
class EngineStats:
    """Observability counters for one engine lifetime."""

    cache_hits: int = 0
    cache_misses: int = 0
    simulated: int = 0
    elapsed: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated": self.simulated,
            "elapsed": self.elapsed,
        }


def _execute_indexed(
    args: Tuple[
        int, RunRequest, DataAcquisition, Optional[Tuple[str, ...]], bool
    ]
) -> Tuple[int, ProcessRun, Optional[Dict[str, object]]]:
    """Worker entry point: simulate one request (picklable, order-tagged).

    With ``record=True`` (the parent had observability enabled) the worker
    re-enables recording in its own process — child processes start with
    the module-level switch off — and ships its registry state back with
    the result so the parent can fold it in
    (:meth:`~repro.obs.metrics.MetricsRegistry.merge_state`).  The
    registry is reset *before* the task because pool workers are reused:
    without the reset a long-lived worker would re-ship its whole history
    with every task and the parent would double-count.  Must stay
    ``False`` on the serial in-process path, where the reset would wipe
    the caller's own registry.
    """
    index, request, daq, channels, record = args
    if record:
        obs.reset()
        obs.enable()
    run = run_process(
        request.setup,
        request.job,
        request.label,
        request.is_malicious,
        request.seed,
        daq=daq,
        channels=channels,
    )
    state = obs.registry().state_dict() if record else None
    return index, run, state


class CampaignEngine:
    """Executes batches of :class:`RunRequest` with caching + parallelism.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``0`` (default) runs serially in the
        calling process; ``>= 2`` fans out over a ``ProcessPoolExecutor``.
        ``1`` behaves like ``0`` (a one-worker pool only adds overhead).
    cache:
        ``None`` (no caching), a directory path, or a ready
        :class:`~repro.cache.RunCache`.
    """

    def __init__(
        self,
        workers: int = 0,
        cache: Union[RunCache, str, "os.PathLike", None] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = int(workers)
        self.cache = resolve_cache(cache)
        self.stats = EngineStats()
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, created on first pooled batch.

        Keeping one pool across batches amortizes worker start-up over the
        whole campaign instead of paying it per ``execute`` call.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; engine stays usable)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CampaignEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def execute(
        self,
        requests: Sequence[RunRequest],
        daq: Optional[DataAcquisition] = None,
        channels: Optional[Sequence[str]] = None,
    ) -> List[ProcessRun]:
        """Run every request; results keep the order of ``requests``.

        Collect-all wrapper over :meth:`iter_execute` with eager (fully
        decoded) cache payloads — bit-identical results to the historical
        batch implementation under any worker count.
        """
        with obs.trace("repro.eval.engine.execute"):
            return [
                run
                for _, run in self.iter_execute(
                    requests, daq=daq, channels=channels, lazy=False
                )
            ]

    def iter_execute(
        self,
        requests: Sequence[RunRequest],
        daq: Optional[DataAcquisition] = None,
        channels: Optional[Sequence[str]] = None,
        *,
        lazy: bool = True,
        window: Optional[int] = None,
    ) -> Iterator[Tuple[RunRequest, ProcessRun]]:
        """Stream ``(request, run)`` pairs in request order as they finish.

        The streaming execution mode: results are yielded one at a time,
        so a consumer that aggregates incrementally holds O(1) runs in
        memory regardless of campaign size.  With ``lazy=True`` (the
        default) cache hits come back as memmap-backed
        :class:`~repro.eval.dataset.ProcessRun` objects — opening a hit
        costs metadata only, and samples page in as the consumer touches
        them.  ``lazy=False`` decodes hits eagerly (what :meth:`execute`
        uses).

        With ``workers >= 2`` misses fan out over the engine's persistent
        pool under a bounded in-flight window (default ``2 * workers``):
        at most ``window`` simulations are queued or running at once, so a
        slow consumer exerts backpressure instead of letting results pile
        up.  Cache lookups always happen in the calling process, and yield
        order is request order regardless of completion order — the seeds
        were pre-assigned, so the stream is bit-identical to the serial
        path.

        The per-task ``queue_wait_s`` histogram observes submit-to-result
        latency for simulated runs; ``engine_run`` events are emitted as
        each request is resolved against the cache.
        """
        requests = list(requests)
        daq = daq or default_daq()
        wanted = tuple(channels) if channels is not None else None
        emit = events.enabled()
        record = obs.enabled()
        t0 = time.perf_counter()
        hits0, misses0 = self.stats.cache_hits, self.stats.cache_misses
        sim0 = self.stats.simulated
        if emit:
            events.emit("engine_batch_start", n_requests=len(requests))
        # Register the counter even for an all-hits batch, so a snapshot
        # after a fully warm campaign reports simulated == 0 explicitly.
        obs.counter("repro.eval.engine.simulated").inc(0)
        try:
            if self.workers >= 2 and len(requests) > 1:
                yield from self._iter_pooled(
                    requests, daq, wanted, lazy, window, emit, record
                )
            else:
                yield from self._iter_serial(
                    requests, daq, wanted, lazy, emit, record
                )
        finally:
            elapsed = time.perf_counter() - t0
            self.stats.elapsed += elapsed
            if emit:
                events.emit(
                    "engine_batch_end",
                    simulated=self.stats.simulated - sim0,
                    cache_hits=self.stats.cache_hits - hits0,
                    cache_misses=self.stats.cache_misses - misses0,
                    elapsed=elapsed,
                )

    # -- streaming internals ----------------------------------------------
    def _lookup(
        self,
        index: int,
        request: RunRequest,
        daq: DataAcquisition,
        wanted: Optional[Tuple[str, ...]],
        lazy: bool,
        emit: bool,
    ) -> Tuple[Optional[str], Optional[ProcessRun]]:
        """Resolve one request against the cache (never reaches a worker)."""
        key: Optional[str] = None
        run: Optional[ProcessRun] = None
        if self.cache is not None:
            key = run_cache_key(
                request.job.program,
                request.setup.machine,
                request.setup.noise,
                daq,
                wanted,
                request.seed,
            )
            with obs.trace("cache_lookup"):
                if lazy:
                    handle = self.cache.get_lazy(key)
                    payload = (
                        None
                        if handle is None
                        else (
                            handle.signals(),
                            handle.layer_times,
                            handle.duration,
                        )
                    )
                else:
                    payload = self.cache.get(key)
            if payload is not None:
                signals, layer_times, duration = payload
                run = ProcessRun(
                    label=request.label,
                    is_malicious=request.is_malicious,
                    signals=signals,
                    layer_times=layer_times,
                    duration=duration,
                )
                self.stats.cache_hits += 1
                obs.counter("repro.eval.engine.cache_hits").inc()
            else:
                self.stats.cache_misses += 1
                obs.counter("repro.eval.engine.cache_misses").inc()
        if emit:
            events.emit(
                "engine_run",
                index=index,
                label=request.label,
                source="cache" if run is not None else "simulated",
                key=key,
                seed=request.seed,
            )
        return key, run

    def _finish_miss(
        self, key: Optional[str], run: ProcessRun
    ) -> ProcessRun:
        """Account for one fresh simulation and write it back."""
        self.stats.simulated += 1
        obs.counter("repro.eval.engine.simulated").inc()
        if self.cache is not None and key is not None:
            with obs.trace("cache_write"):
                self.cache.put(
                    key, run.signals, run.layer_times, run.duration
                )
        return run

    def _iter_serial(
        self, requests, daq, wanted, lazy, emit, record
    ) -> Iterator[Tuple[RunRequest, ProcessRun]]:
        for i, request in enumerate(requests):
            key, run = self._lookup(i, request, daq, wanted, lazy, emit)
            if run is None:
                t_task = time.perf_counter()
                # record=False: the serial path runs in-process, so metrics
                # land in this registry directly (a reset would wipe it).
                with obs.trace("simulate"):
                    _, run, _state = _execute_indexed(
                        (i, request, daq, wanted, False)
                    )
                if record:
                    obs.histogram(
                        "repro.eval.engine.queue_wait_s"
                    ).observe(time.perf_counter() - t_task)
                run = self._finish_miss(key, run)
            yield request, run

    def _iter_pooled(
        self, requests, daq, wanted, lazy, window, emit, record
    ) -> Iterator[Tuple[RunRequest, ProcessRun]]:
        window = window if window else max(2 * self.workers, 2)
        buffer_cap = max(2 * window, 8)
        pool = self._ensure_pool()
        # Entries keep request order: (request, hit-run-or-None, miss-info).
        pending: deque = deque()
        in_flight = 0
        cursor = 0

        def pump() -> None:
            nonlocal cursor, in_flight
            while (
                cursor < len(requests)
                and in_flight < window
                and len(pending) < buffer_cap
            ):
                i = cursor
                cursor += 1
                request = requests[i]
                key, run = self._lookup(i, request, daq, wanted, lazy, emit)
                if run is not None:
                    pending.append((request, run, None))
                    continue
                future = pool.submit(
                    _execute_indexed, (i, request, daq, wanted, record)
                )
                in_flight += 1
                pending.append(
                    (request, None, (key, future, time.perf_counter()))
                )

        try:
            pump()
            while pending:
                request, run, miss = pending.popleft()
                if miss is not None:
                    key, future, t_submit = miss
                    with obs.trace("simulate"):
                        _index, run, state = future.result()
                    in_flight -= 1
                    if state is not None:
                        # Fold the worker's per-task registry into the
                        # parent: counters add, histograms concatenate,
                        # spans merge.
                        obs.registry().merge_state(state)
                    if record:
                        obs.histogram(
                            "repro.eval.engine.queue_wait_s"
                        ).observe(time.perf_counter() - t_submit)
                    run = self._finish_miss(key, run)
                yield request, run
                pump()
        finally:
            # A consumer that stops early must not leave queued work
            # behind; running tasks finish but their results are dropped.
            for entry in pending:
                if entry[2] is not None:
                    entry[2][1].cancel()
