"""Experiment drivers: one function per table/figure of the evaluation.

Each driver consumes a :class:`~repro.eval.dataset.Campaign` (the simulated
testbed) and returns plain data structures that the benchmark harness and
the reporting module format into the paper's tables:

========  ===========================================================
Artifact  Driver
========  ===========================================================
Fig. 1    :func:`fig1_time_noise`
Fig. 2    :func:`fig2_unsynced_distances`
Fig. 6    :func:`fig6_parametric_analysis`
Fig. 10   :func:`fig10_hdisp_consistency`
Table V   :func:`baseline_results` with Moore/Gao
Table VI  :func:`baseline_results` with Bayens (AUD only)
Table VII :func:`baseline_results` with Gatlin
Table VIII:func:`nsync_results` with DWM
Table IX  :func:`nsync_results` with FastDTW (spectrograms only)
Fig. 11   :func:`fig11_time_ratio`
Fig. 12   :func:`fig12_overall_accuracy`
========  ===========================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.base import BaselineIds, ProcessRecording
from ..baselines.bayens import BayensIds
from ..baselines.belikovetsky import BelikovetskyIds
from ..baselines.gao import GaoIds
from ..baselines.gatlin import GatlinIds
from ..baselines.moore import MooreIds
from ..core.discriminator import DetectionFeatures, Thresholds
from ..core.occ import OneClassTrainer
from ..core.pipeline import NsyncIds
from ..signals.signal import Signal
from ..signals.spectrogram import scaled_spectrogram_config, spectrogram
from ..sync.base import Synchronizer
from ..sync.dwm import DwmParams, DwmSynchronizer
from ..sync.fastdtw import FastDtwSynchronizer
from .dataset import Campaign, ProcessRun
from .metrics import DetectionStats, IdsAccumulator

__all__ = [
    "transform_signal",
    "IdsResult",
    "nsync_results",
    "baseline_results",
    "fig1_time_noise",
    "fig2_unsynced_distances",
    "fig6_parametric_analysis",
    "fig10_hdisp_consistency",
    "fig11_time_ratio",
    "fig12_overall_accuracy",
    "BASELINE_FACTORIES",
]

RAW = "Raw"
SPECTRO = "Spectro."


def transform_signal(signal: Signal, channel: str, transform: str) -> Signal:
    """Apply the paper's per-channel transform (raw or Table III STFT)."""
    if transform == RAW:
        return signal
    if transform == SPECTRO:
        config = scaled_spectrogram_config(channel, signal.sample_rate)
        return spectrogram(signal, config)
    raise ValueError(f"unknown transform {transform!r}; expected Raw/Spectro.")


# ---------------------------------------------------------------------------
# NSYNC (Tables VIII and IX)
# ---------------------------------------------------------------------------
@dataclass
class IdsResult:
    """Evaluation outcome of one IDS on one (channel, transform) cell."""

    overall: DetectionStats
    submodules: Dict[str, DetectionStats] = field(default_factory=dict)
    per_attack_tpr: Dict[str, float] = field(default_factory=dict)

    def cell(self) -> str:
        """The paper's "FPR / TPR" format for the overall result."""
        return self.overall.as_pair()


def _submodule_flags(
    features: DetectionFeatures, thresholds: Thresholds
) -> Dict[str, bool]:
    """Would each sub-module fire *alone* on these features?"""
    c = bool(features.c_disp.size and features.c_disp.max() > thresholds.c_c)
    h = bool(
        features.h_dist_filtered.size
        and features.h_dist_filtered.max() > thresholds.h_c
    )
    v = bool(
        features.v_dist_filtered.size
        and features.v_dist_filtered.max() > thresholds.v_c
    )
    d = features.duration_mismatch > thresholds.d_c
    return {"c_disp": c, "h_dist": h, "v_dist": v, "duration": d}


def nsync_results(
    campaign: Campaign,
    channel: str,
    transform: str = RAW,
    synchronizer: Optional[Synchronizer] = None,
    r: float = 0.3,
    mode: str = "batch",
    chunk_s: float = 0.25,
) -> IdsResult:
    """Evaluate NSYNC with the given synchronizer on one campaign cell.

    Default synchronizer: DWM with the campaign printer's Table IV
    parameters (Table VIII); pass ``FastDtwSynchronizer()`` for Table IX.

    ``mode`` selects how the unified detection core is fed: ``"batch"``
    hands each signal over in one call, ``"streaming"`` pushes ``chunk_s``
    sized chunks as a live DAQ would.  Both run the same
    :class:`~repro.core.engine.DetectionEngine`, so the scores are
    identical — the streaming mode exists to evaluate (and regression-test)
    the deployment path itself.

    The evaluation is a single pass over :meth:`Campaign.iter_runs` folded
    through an :class:`~repro.eval.metrics.IdsAccumulator`: the stream
    yields the reference first and finishes training before the first test
    run, so at no point is more than one run's signal resident.  On a lazy
    (plan-backed) campaign this evaluates arbitrarily large campaigns in
    O(1) run memory; on an eager campaign the verdicts — confusion counts
    are commutative sums — are float-for-float what the materialized
    implementation produced.
    """
    if synchronizer is None:
        synchronizer = DwmSynchronizer(campaign.setup.dwm_params)
    if mode not in ("batch", "streaming"):
        raise ValueError(f"mode must be 'batch' or 'streaming', got {mode!r}")

    def signal_of(run: ProcessRun) -> Signal:
        return transform_signal(run.signals[channel], channel, transform)

    ids: Optional[NsyncIds] = None

    def features_of(signal: Signal):
        if mode == "batch":
            return ids.analyze(signal).features
        engine = ids.engine(armed=False)
        hop = max(1, int(round(chunk_s * signal.sample_rate)))
        for start in range(0, signal.n_samples, hop):
            engine.push(signal.data[start : start + hop])
        return engine.finalize().features

    trainer = OneClassTrainer(r=r)
    thresholds: Optional[Thresholds] = None
    acc = IdsAccumulator(
        submodule_names=("c_disp", "h_dist", "v_dist", "duration")
    )

    for role, run in campaign.iter_runs():
        if role == "reference":
            ids = NsyncIds(signal_of(run), synchronizer)
            continue
        if ids is None:
            raise ValueError(
                "campaign stream yielded runs before the reference"
            )
        if role == "training":
            trainer.add_run(features_of(signal_of(run)))
            continue
        if thresholds is None:
            # The stream is ordered reference -> training -> tests, so the
            # first test run marks the training set complete.
            thresholds = trainer.thresholds()
            ids.thresholds = thresholds
        features = features_of(signal_of(run))
        acc.record(
            run.label,
            run.is_malicious,
            _submodule_flags(features, thresholds),
        )

    return IdsResult(
        overall=acc.overall,
        submodules=acc.submodules,
        per_attack_tpr=acc.per_attack_tpr,
    )


# ---------------------------------------------------------------------------
# Baselines (Tables V, VI, VII and the Belikovetsky paragraph)
# ---------------------------------------------------------------------------
BASELINE_FACTORIES: Dict[str, Callable[[], BaselineIds]] = {
    "moore": MooreIds,
    "gao": GaoIds,
    "bayens": BayensIds,
    "belikovetsky": BelikovetskyIds,
    "gatlin": GatlinIds,
}


def baseline_results(
    campaign: Campaign,
    ids: BaselineIds,
    channel: str,
    transform: str = RAW,
) -> IdsResult:
    """Evaluate a prior-work IDS on one campaign cell.

    Consumes the campaign as a single run stream.  The ``BaselineIds.fit``
    API takes the training recordings as a batch, so the (single-channel)
    training recordings are buffered until the first test run arrives and
    released immediately after fitting — test runs then stream through one
    at a time.
    """

    def recording_of(run: ProcessRun) -> ProcessRecording:
        return ProcessRecording(
            signal=transform_signal(run.signals[channel], channel, transform),
            layer_times=run.layer_times,
        )

    reference: Optional[ProcessRecording] = None
    training: List[ProcessRecording] = []
    fitted = False
    acc = IdsAccumulator()

    def fit() -> None:
        nonlocal fitted, training
        ids.fit(reference, training)
        fitted = True
        training = []

    for role, run in campaign.iter_runs():
        if role == "reference":
            reference = recording_of(run)
            continue
        if reference is None:
            raise ValueError(
                "campaign stream yielded runs before the reference"
            )
        if role == "training":
            training.append(recording_of(run))
            continue
        if not fitted:
            fit()
        detection = ids.detect(recording_of(run))
        acc.record(
            run.label,
            run.is_malicious,
            dict(detection.submodules),
            fired=detection.is_intrusion,
        )
    if not fitted and reference is not None:
        fit()  # no test runs: leave the caller's IDS fitted regardless

    return IdsResult(
        overall=acc.overall,
        submodules=acc.submodules,
        per_attack_tpr=acc.per_attack_tpr,
    )


# ---------------------------------------------------------------------------
# Fig. 1: time noise makes identical prints end at different times
# ---------------------------------------------------------------------------
def fig1_time_noise(campaign: Campaign) -> Dict[str, object]:
    """Durations of repeated identical prints (the Fig. 1 misalignment).

    Returns the per-run durations and their spread; with time noise the
    spread is orders of magnitude above the sampling period.
    """
    durations = [campaign.reference.duration]
    durations += [run.duration for run in campaign.training]
    durations += [run.duration for run in campaign.benign_test]
    durations_arr = np.asarray(durations)
    return {
        "durations": durations_arr,
        "spread": float(durations_arr.max() - durations_arr.min()),
        "mean": float(durations_arr.mean()),
    }


# ---------------------------------------------------------------------------
# Fig. 2: distances without synchronization
# ---------------------------------------------------------------------------
def fig2_unsynced_distances(
    campaign: Campaign, channel: str = "ACC", transform: str = RAW
) -> Dict[str, np.ndarray]:
    """Window-by-window correlation distances with NO synchronization.

    Reproduces Fig. 2: a benign process scores distances as large as a
    malicious one because time noise destroys the pointwise alignment.
    """
    from ..core.comparator import Comparator
    from ..sync.base import SyncResult

    params = campaign.setup.dwm_params

    def unsynced_vdist(run: ProcessRun) -> np.ndarray:
        obs = transform_signal(run.signals[channel], channel, transform)
        ref = transform_signal(
            campaign.reference.signals[channel], channel, transform
        )
        n_win = params.n_win(obs.sample_rate)
        n_hop = params.n_hop(obs.sample_rate)
        n = min(obs.n_windows(n_win, n_hop), ref.n_windows(n_win, n_hop))
        sync = SyncResult(
            h_disp=np.zeros(n), mode="window", n_win=n_win, n_hop=n_hop
        )
        return Comparator().vertical_distances(obs, ref, sync)

    benign = unsynced_vdist(campaign.benign_test[0])
    first_attack = next(iter(campaign.malicious_test.values()))[0]
    malicious = unsynced_vdist(first_attack)
    return {"benign": benign, "malicious": malicious}


# ---------------------------------------------------------------------------
# Fig. 6: parametric analysis of t_sigma, t_win, eta
# ---------------------------------------------------------------------------
def fig6_parametric_analysis(
    campaign: Campaign,
    channel: str = "ACC",
    transform: str = RAW,
    t_sigma_values: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    t_win_values: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    eta_values: Sequence[float] = (0.05, 0.1, 0.3, 0.9),
) -> Dict[str, Dict[float, np.ndarray]]:
    """h_disp as each DWM parameter sweeps (one benign observation)."""
    base = campaign.setup.dwm_params
    obs = transform_signal(
        campaign.benign_test[0].signals[channel], channel, transform
    )
    ref = transform_signal(
        campaign.reference.signals[channel], channel, transform
    )

    def h_disp_for(params: DwmParams) -> np.ndarray:
        return DwmSynchronizer(params).synchronize(obs, ref).h_disp

    from dataclasses import replace

    out: Dict[str, Dict[float, np.ndarray]] = {
        "t_sigma": {}, "t_win": {}, "eta": {},
    }
    for value in t_sigma_values:
        params = replace(base, t_sigma=value, t_ext=2.0 * value)
        out["t_sigma"][value] = h_disp_for(params)
    for value in t_win_values:
        params = replace(base, t_win=value, t_hop=value / 2.0)
        out["t_win"][value] = h_disp_for(params)
    for value in eta_values:
        out["eta"][value] = h_disp_for(replace(base, eta=value))
    return out


# ---------------------------------------------------------------------------
# Fig. 10: h_disp consistency across side channels
# ---------------------------------------------------------------------------
def fig10_hdisp_consistency(
    campaign: Campaign,
    channels: Optional[Sequence[str]] = None,
    transforms: Sequence[str] = (RAW, SPECTRO),
) -> Dict[Tuple[str, str], np.ndarray]:
    """h_disp per (channel, transform) for one benign run, resampled to a
    common length so their shapes can be compared directly.

    The paper's finding: channels strongly correlated with printer state
    (ACC, AUD, spectrogram-EPT) produce near-identical h_disp; TMP and PWR
    produce noise.
    """
    from ..signals.filters import resample_linear

    channels = tuple(channels) if channels else campaign.channels
    run = campaign.benign_test[0]
    out: Dict[Tuple[str, str], np.ndarray] = {}
    for channel in channels:
        for transform in transforms:
            obs = transform_signal(run.signals[channel], channel, transform)
            ref = transform_signal(
                campaign.reference.signals[channel], channel, transform
            )
            sync = DwmSynchronizer(campaign.setup.dwm_params).synchronize(
                obs, ref
            )
            # Convert to seconds so different sampling rates are comparable.
            h_seconds = sync.h_disp / obs.sample_rate
            out[(channel, transform)] = (
                resample_linear(h_seconds, 50) if h_seconds.size else h_seconds
            )
    return out


# ---------------------------------------------------------------------------
# Fig. 11: time to synchronize one second of spectrogram
# ---------------------------------------------------------------------------
def fig11_time_ratio(
    campaign: Campaign,
    channel: str = "ACC",
    fastdtw_radius: int = 1,
) -> Dict[str, float]:
    """Wall-clock seconds needed to synchronize 1 s of spectrogram.

    The paper's Fig. 11: DWM is dramatically cheaper than (Fast)DTW.  The
    comparison is made at the paper's *temporal* resolution (Table III's
    delta_t, i.e. 80-240 frames/s): DTW's cost is driven by the frame count,
    and the scaled-rate spectrograms used elsewhere have so few frames that
    any synchronizer is trivially fast on them.
    """
    from ..signals.spectrogram import (
        PAPER_SPECTROGRAMS,
        SpectrogramConfig,
        scaled_spectrogram_config,
    )

    def paper_rate_spectrogram(run: ProcessRun) -> Signal:
        signal = run.signals[channel]
        scaled = scaled_spectrogram_config(channel, signal.sample_rate)
        config = SpectrogramConfig(
            delta_f=scaled.delta_f,
            delta_t=PAPER_SPECTROGRAMS[channel].delta_t,
            window=scaled.window,
        )
        return spectrogram(signal, config)

    obs = paper_rate_spectrogram(campaign.benign_test[0])
    ref = paper_rate_spectrogram(campaign.reference)
    # 30 s of signal is plenty to stabilise a per-second cost estimate.
    obs = obs.slice_seconds(0.0, min(30.0, obs.duration))
    ref = ref.slice_seconds(0.0, min(30.0, ref.duration))
    seconds = obs.duration

    t0 = time.perf_counter()
    DwmSynchronizer(campaign.setup.dwm_params).synchronize(obs, ref)
    dwm_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    FastDtwSynchronizer(radius=fastdtw_radius).synchronize(obs, ref)
    dtw_time = time.perf_counter() - t0

    # The paper ran the standard pure-Python FastDTW; its per-cell constant
    # is what Fig. 11 actually measures.  The algorithm is linear, so a
    # shorter slice gives the same per-second cost.
    from ..sync.fastdtw_reference import ReferenceFastDtwSynchronizer

    obs_short = obs.slice_seconds(0.0, min(8.0, obs.duration))
    ref_short = ref.slice_seconds(0.0, min(8.0, ref.duration))
    t0 = time.perf_counter()
    ReferenceFastDtwSynchronizer(radius=fastdtw_radius).synchronize(
        obs_short, ref_short
    )
    dtw_ref_time_ratio = (time.perf_counter() - t0) / obs_short.duration

    return {
        "dwm_time_ratio": dwm_time / seconds,
        "dtw_time_ratio": dtw_time / seconds,
        "dtw_reference_time_ratio": dtw_ref_time_ratio,
        "speedup": dtw_time / dwm_time if dwm_time > 0 else float("inf"),
        "reference_speedup": (
            dtw_ref_time_ratio * seconds / dwm_time
            if dwm_time > 0
            else float("inf")
        ),
    }


# ---------------------------------------------------------------------------
# Fig. 12: average accuracy of the seven IDSs
# ---------------------------------------------------------------------------
def fig12_overall_accuracy(
    campaign: Campaign,
    channels: Optional[Sequence[str]] = None,
    nsync_transforms: Sequence[str] = (RAW, SPECTRO),
) -> Dict[str, float]:
    """Average accuracy of all seven IDSs over channels and transforms.

    Audio-only IDSs (Bayens, Belikovetsky) are evaluated on AUD, as in the
    paper; NSYNC/DTW only on spectrograms (raw DTW "took forever").
    """
    channels = tuple(channels) if channels else campaign.channels
    accuracies: Dict[str, List[float]] = {}

    def add(name: str, result: IdsResult) -> None:
        accuracies.setdefault(name, []).append(result.overall.accuracy)

    for channel in channels:
        for transform in (RAW, SPECTRO):
            if channel == "EPT" and transform == RAW:
                continue  # dropped in the paper (60 Hz hum dominates)
            add("moore", baseline_results(campaign, MooreIds(), channel, transform))
            add("gao", baseline_results(campaign, GaoIds(), channel, transform))
            add(
                "gatlin",
                baseline_results(campaign, GatlinIds(), channel, transform),
            )
            if transform in nsync_transforms:
                add(
                    "nsync_dwm",
                    nsync_results(campaign, channel, transform),
                )
        add(
            "nsync_dtw",
            nsync_results(
                campaign, channel, SPECTRO, synchronizer=FastDtwSynchronizer()
            ),
        )
    if "AUD" in channels:
        add("bayens", baseline_results(campaign, BayensIds(), "AUD", RAW))
        add(
            "belikovetsky",
            baseline_results(campaign, BelikovetskyIds(), "AUD", RAW),
        )
    return {name: float(np.mean(values)) for name, values in accuracies.items()}
