"""Forensics: from an event log to an incident report.

``repro detect --events-out`` records the full decision provenance of one
run — per-window evidence, per-submodule alarms, and a ``run_summary``
carrying the window geometry.  This module joins that stream with the
:class:`~repro.printer.firmware.MachineTrace` sample-index → instruction
mapping to answer the question the paper's IDS leaves to the operator:
*which part of the print was attacked?*

The join is purely geometric: an alarm at window ``i`` covers print time
``[i * n_hop / fs, (i * n_hop + n_win) / fs)``; the trace's
``command_index`` says which G-code instructions executed in that
interval.  When the attacked job carries ground-truth ``tampered_spans``
(every :class:`~repro.attacks.base.Attack` annotates them), overlap of
the implicated span with a tampered span is the *localization* metric
reported by ``repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .reporting import format_table

__all__ = [
    "Incident",
    "alarm_time_span",
    "incident_from_events",
    "localization_rows",
    "render_incident_report",
    "render_localization_table",
    "spans_overlap",
]

Span = Tuple[int, int]


def spans_overlap(a: Span, b: Span) -> bool:
    """Whether two half-open ``[lo, hi)`` spans intersect."""
    return a[0] < b[1] and b[0] < a[1]


def alarm_time_span(
    index: int,
    n_win: int,
    n_hop: int,
    sample_rate: float,
    mode: str = "window",
) -> Tuple[float, float]:
    """Print-time interval covered by alarm ``index`` (seconds).

    Window mode: window ``i`` spans samples ``[i * n_hop, i * n_hop +
    n_win)``.  Point mode: one sample.
    """
    if mode == "window":
        return (
            index * n_hop / sample_rate,
            (index * n_hop + n_win) / sample_rate,
        )
    return index / sample_rate, (index + 1) / sample_rate


@dataclass(frozen=True)
class Incident:
    """The reconstructed story of one detection run."""

    is_intrusion: bool
    fired: Tuple[str, ...]
    n_windows: int
    first_alarm_index: Optional[int]
    first_alarm_time: Optional[float]
    #: Print-time interval of the first alarm window, seconds.
    alarm_span_s: Optional[Tuple[float, float]]
    #: Half-open G-code instruction span implicated by the first alarm
    #: (requires a :class:`~repro.printer.firmware.MachineTrace`).
    implicated_span: Optional[Span]
    alarms: Tuple[Mapping, ...]
    evidence: Tuple[Mapping, ...]
    thresholds: Mapping[str, Optional[float]]


def incident_from_events(
    records: Sequence[Mapping], trace=None
) -> Incident:
    """Reconstruct an :class:`Incident` from an event stream.

    ``records`` is a list of schema-v1 event dicts (e.g. from
    :func:`repro.obs.events.read_jsonl`) containing at least one
    ``run_summary``; the last one wins when several runs share a log.
    With a ``trace`` (the :class:`~repro.printer.firmware.MachineTrace`
    of the observed print), the first alarm window is mapped onto the
    implicated instruction span.
    """
    summary: Optional[Mapping] = None
    for record in records:
        if record.get("type") == "run_summary":
            summary = record
    if summary is None:
        raise ValueError(
            "event stream has no run_summary — was it recorded by "
            "'repro detect --events-out'?"
        )
    alarms = tuple(r for r in records if r.get("type") == "alarm")
    evidence = tuple(
        r for r in records if r.get("type") == "window_evidence"
    )

    first_index = summary.get("first_alarm_index")
    alarm_span_s: Optional[Tuple[float, float]] = None
    implicated: Optional[Span] = None
    if first_index is not None:
        alarm_span_s = alarm_time_span(
            int(first_index),
            int(summary["n_win"]),
            int(summary["n_hop"]),
            float(summary["sample_rate"]),
            str(summary.get("mode", "window")),
        )
        if trace is not None:
            implicated = trace.instruction_span(*alarm_span_s)

    return Incident(
        is_intrusion=bool(summary["is_intrusion"]),
        fired=tuple(summary.get("fired", ())),
        n_windows=int(summary["n_windows"]),
        first_alarm_index=(
            int(first_index) if first_index is not None else None
        ),
        first_alarm_time=summary.get("first_alarm_time"),
        alarm_span_s=alarm_span_s,
        implicated_span=implicated,
        alarms=alarms,
        evidence=evidence,
        thresholds=dict(summary.get("thresholds", {})),
    )


def _format_span(span: Optional[Span]) -> str:
    return f"[{span[0]}, {span[1]})" if span is not None else "-"


def render_incident_report(
    incident: Incident,
    program=None,
    tampered_spans: Sequence[Span] = (),
    context_windows: int = 5,
    max_gcode_lines: int = 8,
) -> str:
    """Render an :class:`Incident` as a markdown report.

    ``program`` (a :class:`~repro.printer.gcode.GcodeProgram`) lets the
    report quote the implicated G-code lines; ``tampered_spans`` (the
    attack's ground truth) adds the localization verdict.
    """
    lines: List[str] = ["# Incident report", ""]
    if not incident.is_intrusion:
        lines.append("**Verdict: benign** — no sub-module fired over "
                     f"{incident.n_windows} windows.")
        return "\n".join(lines) + "\n"

    fired = ", ".join(incident.fired) or "?"
    lines.append(f"**Verdict: INTRUSION** (sub-modules: {fired})")
    lines.append("")
    if incident.first_alarm_index is not None:
        when = (
            f"{incident.first_alarm_time:.2f} s"
            if incident.first_alarm_time is not None
            else "unknown time"
        )
        lines.append(
            f"First alarm at window {incident.first_alarm_index} "
            f"({when} into the print)."
        )
    if incident.alarm_span_s is not None:
        t0, t1 = incident.alarm_span_s
        lines.append(
            f"The alarm window covers print time "
            f"[{t0:.2f} s, {t1:.2f} s)."
        )
    lines.append("")

    if incident.alarms:
        lines.append("## Alarms")
        lines.append("")
        lines.append("| window | sub-module | value | threshold | time (s) |")
        lines.append("|---|---|---|---|---|")
        for alarm in incident.alarms:
            lines.append(
                f"| {alarm['window']} | {alarm['submodule']} "
                f"| {alarm['value']:.4g} | {alarm['threshold']:.4g} "
                f"| {alarm.get('time_s', 0.0):.2f} |"
            )
        lines.append("")

    if incident.implicated_span is not None:
        lo, hi = incident.implicated_span
        lines.append("## Implicated instructions")
        lines.append("")
        lines.append(
            f"G-code instructions {_format_span(incident.implicated_span)} "
            "were executing when the first alarm fired."
        )
        if program is not None:
            lines.append("")
            lines.append("```gcode")
            shown = list(range(lo, min(hi, lo + max_gcode_lines)))
            for i in shown:
                if 0 <= i < len(program):
                    lines.append(f"{i:5d}  {program[i].to_line()}")
            if hi - lo > len(shown):
                lines.append(f"       ... ({hi - lo - len(shown)} more)")
            lines.append("```")
        if tampered_spans:
            localized = any(
                spans_overlap(incident.implicated_span, s)
                for s in tampered_spans
            )
            spans_text = ", ".join(_format_span(s) for s in tampered_spans)
            verdict = (
                "**overlaps** the tampered instructions — "
                "localization correct"
                if localized
                else "does **not** overlap the tampered instructions"
            )
            lines.append("")
            lines.append(
                f"Ground truth: the attack tampered with instructions "
                f"{spans_text}; the implicated span {verdict}."
            )
        lines.append("")

    if incident.evidence and incident.first_alarm_index is not None:
        center = incident.first_alarm_index
        lo_w = max(0, center - context_windows)
        hi_w = center + context_windows + 1
        rows = [
            e for e in incident.evidence if lo_w <= e["window"] < hi_w
        ]
        if rows:
            lines.append("## Evidence trajectory")
            lines.append("")
            lines.append(
                f"Windows {lo_w}..{hi_w - 1} around the first alarm "
                "(thresholds: "
                + ", ".join(
                    f"{k}={v:.4g}" if v is not None else f"{k}=inf"
                    for k, v in incident.thresholds.items()
                )
                + "):"
            )
            lines.append("")
            lines.append("| window | h_disp | c_disp | h_dist_f | v_dist_f |")
            lines.append("|---|---|---|---|---|")
            for e in rows:
                marker = " ←" if e["window"] == center else ""
                lines.append(
                    f"| {e['window']}{marker} | {e['h_disp']:.2f} "
                    f"| {e['c_disp']:.2f} | {e['h_dist_f']:.2f} "
                    f"| {e['v_dist_f']:.4f} |"
                )
            lines.append("")
    return "\n".join(lines) + "\n"


def localization_rows(
    campaign, channel: str = "ACC", seed: int = 997
) -> List[Dict]:
    """One localization probe per Table I attack.

    Trains NSYNC from the campaign's reference/training runs, then for
    each attack re-simulates a single attacked print *keeping the machine
    trace*, detects, maps the first alarm window back onto an instruction
    span, and checks it against the attack's ground-truth tampered spans.
    """
    from ..attacks import TABLE_I_ATTACKS
    from ..core import NsyncIds
    from ..printer.firmware import simulate_print
    from ..sensors.daq import default_daq
    from ..sync import DwmSynchronizer

    setup = campaign.setup
    ids = NsyncIds(
        campaign.reference.signals[channel],
        DwmSynchronizer(setup.dwm_params),
    )
    ids.fit(run.signals[channel] for run in campaign.training)

    daq = default_daq()
    job = setup.job()
    rows: List[Dict] = []
    for attack in TABLE_I_ATTACKS():
        attacked = attack.apply(job)
        trace = simulate_print(
            attacked.program, setup.machine, setup.noise, seed=seed
        )
        observed = daq.acquire(
            trace, np.random.default_rng(seed + 7_919), channels=[channel]
        )[channel]
        verdict = ids.detect(observed)

        implicated: Optional[Span] = None
        localized: Optional[bool] = None
        if verdict.is_intrusion and verdict.first_alarm_time is not None:
            t0 = verdict.first_alarm_time
            implicated = trace.instruction_span(
                t0, t0 + setup.dwm_params.t_win
            )
            if attacked.tampered_spans:
                localized = any(
                    spans_overlap(implicated, s)
                    for s in attacked.tampered_spans
                )
        rows.append(
            {
                "attack": attack.name,
                "detected": verdict.is_intrusion,
                "implicated_span": implicated,
                "tampered_spans": attacked.tampered_spans,
                "localized": localized,
            }
        )
    return rows


def render_localization_table(rows: Sequence[Mapping]) -> str:
    """Monospace table for :func:`localization_rows` output."""
    body = []
    for row in rows:
        tampered = (
            ", ".join(_format_span(s) for s in row["tampered_spans"])
            or "-"
        )
        localized = row["localized"]
        body.append(
            [
                row["attack"],
                "yes" if row["detected"] else "no",
                _format_span(row["implicated_span"]),
                tampered,
                "-" if localized is None else ("yes" if localized else "no"),
            ]
        )
    return format_table(
        ["Attack", "Detected", "Implicated", "Tampered", "Localized"],
        body,
    )
