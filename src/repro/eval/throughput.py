"""Steady-state :class:`DetectionEngine` throughput measurement.

Single-core speed *is* the product for the detection core (ROADMAP item
2): the engine is single-threaded, so samples/s here **is** samples/s/core
and directly bounds streams/core for the planned fleet ingest service.
This module owns the workload definition and the measurement procedure;
``benchmarks/bench_engine_throughput.py`` records the numbers into the
regression-gated history and ``repro bench throughput`` prints them on
demand.

Measurement semantics
---------------------

* **streaming** — chunked :meth:`DetectionEngine.push` at a DAQ-realistic
  chunk size (default 10 samples at 200 Hz = 50 ms of signal per push);
  the timed region is the push loop only (steady state), not engine
  construction or :meth:`finalize`.
* **batch** — one push of the whole signal.
* **cold** vs **warm** — cold is the first in-process run (includes lazy
  allocations and kernel dispatch warm-up); warm is the best of
  ``repeats`` subsequent runs.  Only the warm numbers are regression-
  gated: cold is dominated by one-time costs that say nothing about the
  hot path.
* **disabled-obs overhead** — the streaming run is re-timed with the
  ``obs`` module swapped for a probe whose ``enabled()`` is hard-wired
  ``False`` and whose instrument factories *count* every touch.  The
  probe run measures a build with no observability registry at all, so
  ``t_normal / t_probe - 1`` is the overhead the disabled obs layer adds
  to ``push()``; the touch count asserts structurally that the disabled
  hot path never enters a span or resolves a counter.  The same probe
  also swaps the ``telemetry`` module seen by the engine for a stub
  whose stream-health methods count, so a disabled run that brushed the
  per-stream health registry (PR 8) fails the same zero-touch gate.
* **chunk latency** — per-chunk ``push()`` wall latency (p50/p99, ms) is
  measured in a *separate* untimed pass so the latency bookkeeping never
  perturbs the gated samples/s numbers.  These are the SLO numbers the
  live telemetry endpoint exports per stream; recording them into the
  benchmark history puts a lower-is-better regression gate on them too.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.discriminator import Thresholds
from ..core.engine import DetectionEngine
from ..signals.signal import Signal
from ..sync.dwm import DwmParams, DwmSynchronizer

__all__ = [
    "RECORD_NAME",
    "ThroughputWorkload",
    "measure_engine_throughput",
    "count_hot_path_obs_calls",
    "load_baseline_record",
    "render_comparison",
]

#: Record name under which benchmarks/results/BENCH_engine_throughput.json
#: accumulates measurements (one record per benchmark run).
RECORD_NAME = "engine_throughput"

#: The warm samples/s/core fields, i.e. the regression-gated measurements.
WARM_FIELDS = (
    "streaming_warm_samples_per_s",
    "batch_warm_samples_per_s",
)

#: Lower-is-better per-chunk push-latency fields (also regression-gated).
LATENCY_FIELDS = (
    "streaming_chunk_p50_ms",
    "streaming_chunk_p99_ms",
)


@dataclass(frozen=True)
class ThroughputWorkload:
    """A deterministic, textured single-channel detection workload.

    The signal is a two-tone sine mixture plus noise — textured enough
    that the sanitize stage's dark-run tracker stays on its general-case
    footing (a constant signal would be one giant dark run) and the DWM
    search finds genuine correlation peaks.
    """

    sample_rate: float = 200.0
    n_samples: int = 40_000
    chunk_samples: int = 10
    t_win: float = 1.0
    t_hop: float = 0.5
    t_ext: float = 0.5
    t_sigma: float = 0.25
    eta: float = 0.2
    seed: int = 7

    def signals(self) -> Tuple[Signal, np.ndarray]:
        """Build the (reference, observed) pair for this workload."""
        rng = np.random.default_rng(self.seed)
        n = self.n_samples
        t = np.arange(n) / self.sample_rate
        base = (
            np.sin(2 * np.pi * 1.3 * t)
            + 0.5 * np.sin(2 * np.pi * 5.1 * t + 0.7)
            + 0.2 * rng.standard_normal(n)
        )
        reference = Signal(base[:, np.newaxis].copy(), self.sample_rate)
        observed = (base + 0.05 * rng.standard_normal(n))[:, np.newaxis]
        return reference, observed.copy()

    def engine(self, reference: Signal) -> DetectionEngine:
        params = DwmParams(
            t_win=self.t_win,
            t_hop=self.t_hop,
            t_ext=self.t_ext,
            t_sigma=self.t_sigma,
            eta=self.eta,
        )
        thresholds = Thresholds(c_c=50.0, h_c=20.0, v_c=0.5)
        return DetectionEngine(reference, DwmSynchronizer(params), thresholds)


def _push_loop(
    engine: DetectionEngine, workload: ThroughputWorkload, observed: np.ndarray
) -> float:
    """Seconds spent inside the chunked push loop (steady state only)."""
    chunk = workload.chunk_samples
    n = workload.n_samples
    t0 = time.perf_counter()
    for s in range(0, n, chunk):
        engine.push(observed[s : s + chunk])
    return time.perf_counter() - t0


def _chunk_latencies(
    workload: ThroughputWorkload, reference: Signal, observed: np.ndarray
) -> np.ndarray:
    """Per-chunk ``push()`` wall latencies (seconds), one warm pass.

    Runs *outside* the timed throughput loops: the per-chunk clock reads
    here would otherwise perturb the gated samples/s numbers.
    """
    engine = workload.engine(reference)
    chunk = workload.chunk_samples
    n = workload.n_samples
    latencies = np.empty(-(-n // chunk), dtype=np.float64)
    for i, s in enumerate(range(0, n, chunk)):
        t0 = time.perf_counter()
        engine.push(observed[s : s + chunk])
        latencies[i] = time.perf_counter() - t0
    engine.finalize()
    return latencies


def _time_streaming(
    workload: ThroughputWorkload, reference: Signal, observed: np.ndarray
) -> float:
    """Seconds spent inside the chunked push loop (steady state)."""
    engine = workload.engine(reference)
    dt = _push_loop(engine, workload, observed)
    engine.finalize()
    return dt


def _time_batch(
    workload: ThroughputWorkload, reference: Signal, observed: np.ndarray
) -> float:
    """Seconds spent pushing the whole signal at once."""
    engine = workload.engine(reference)
    t0 = time.perf_counter()
    engine.push(observed)
    dt = time.perf_counter() - t0
    engine.finalize()
    return dt


class _NullSpan:
    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


class _NullInstrument:
    def inc(self, value: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


class _ObsProbe:
    """An ``obs``-module lookalike with no registry behind it.

    ``enabled()`` is hard-wired ``False`` (the one check the hoisted fast
    path is allowed to make); every *other* touch — entering a span,
    resolving a counter/gauge/histogram, or (via the paired
    :class:`_TelemetryStub`) touching a stream-health row — bumps
    ``touches``.  A correctly hoisted hot path therefore times
    identically to the real disabled ``obs`` module and finishes with
    ``touches == 0``.
    """

    def __init__(self) -> None:
        self.touches = 0
        self._span = _NullSpan()
        self._instrument = _NullInstrument()

    @staticmethod
    def enabled() -> bool:
        return False

    def trace(self, name: str) -> _NullSpan:
        self.touches += 1
        return self._span

    def counter(self, name: str) -> _NullInstrument:
        self.touches += 1
        return self._instrument

    def gauge(self, name: str) -> _NullInstrument:
        self.touches += 1
        return self._instrument

    def histogram(self, name: str) -> _NullInstrument:
        self.touches += 1
        return self._instrument


class _HealthProbe:
    """A stream-health row whose every method counts as an obs touch."""

    def __init__(self, probe: _ObsProbe) -> None:
        self._probe = probe

    def observe_chunk(self, *args: object, **kwargs: object) -> None:
        self._probe.touches += 1

    def note_alert(self, *args: object, **kwargs: object) -> None:
        self._probe.touches += 1

    def mark_finished(self, *args: object, **kwargs: object) -> None:
        self._probe.touches += 1

    def snapshot(self, *args: object, **kwargs: object) -> Dict[str, object]:
        self._probe.touches += 1
        return {}


class _TelemetryStub:
    """A ``repro.obs.telemetry`` lookalike for the zero-touch probe.

    An engine constructed without a ``stream_id`` binds
    ``NULL_STREAM_HEALTH`` — here a counting :class:`_HealthProbe` — so
    any health-row call the disabled hot path makes shows up in the same
    ``touches`` count the benchmark asserts to be zero.
    """

    def __init__(self, probe: _ObsProbe) -> None:
        self._probe = probe
        self.NULL_STREAM_HEALTH = _HealthProbe(probe)

    def register_stream(self, stream_id: str, sample_rate: float) -> _HealthProbe:
        self._probe.touches += 1
        return self.NULL_STREAM_HEALTH


@contextlib.contextmanager
def _patched_obs(probe: _ObsProbe) -> Iterator[None]:
    """Swap the ``obs`` + ``telemetry`` modules seen by the hot path."""
    import importlib

    modules = tuple(
        importlib.import_module(f"repro.{name}")
        for name in ("core.engine", "core.comparator", "sync.dwm", "sync.tde")
    )
    engine_mod = modules[0]
    saved = [m.obs for m in modules]
    saved_telemetry = engine_mod.telemetry
    for m in modules:
        m.obs = probe  # type: ignore[misc]
    engine_mod.telemetry = _TelemetryStub(probe)  # type: ignore[misc]
    try:
        yield
    finally:
        for m, original in zip(modules, saved):
            m.obs = original  # type: ignore[misc]
        engine_mod.telemetry = saved_telemetry  # type: ignore[misc]


def count_hot_path_obs_calls(
    workload: Optional[ThroughputWorkload] = None,
) -> int:
    """Obs-layer touches made by a disabled-observability streaming run.

    Returns the number of span entries / instrument resolutions the
    ``push()`` hot path performed with observability disabled — 0 when
    the fast path is correctly hoisted (asserted by the benchmark).  Only
    the push loop is probed: construction and :meth:`finalize` run once
    per stream and may legitimately keep their (null) spans.
    """
    w = workload or ThroughputWorkload(n_samples=2_000)
    reference, observed = w.signals()
    probe = _ObsProbe()
    with _patched_obs(probe):
        # Constructed inside the patch so the engine binds the counting
        # health row: a hot path that brushed per-stream telemetry would
        # be counted, not silently absorbed by the real null singleton.
        engine = w.engine(reference)
        probe.touches = 0  # construction itself is not the hot path
        _push_loop(engine, w, observed)
        touches = probe.touches
    engine.finalize()
    return touches


def measure_engine_throughput(
    workload: Optional[ThroughputWorkload] = None, repeats: int = 3
) -> Dict[str, object]:
    """Measure batch + streaming engine throughput (samples/s/core).

    Returns a JSON-safe record (see module docstring for field
    semantics) ready to append to ``BENCH_engine_throughput.json``.
    """
    from .. import obs

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    w = workload or ThroughputWorkload()
    reference, observed = w.signals()
    was_enabled = obs.enabled()
    obs.disable()
    try:
        stream_cold = _time_streaming(w, reference, observed)
        stream_warm = min(
            _time_streaming(w, reference, observed) for _ in range(repeats)
        )
        batch_cold = _time_batch(w, reference, observed)
        batch_warm = min(
            _time_batch(w, reference, observed) for _ in range(repeats)
        )
        probe = _ObsProbe()
        with _patched_obs(probe):
            engines = [w.engine(reference) for _ in range(repeats)]
            probe.touches = 0  # construction is not the hot path
            no_obs = min(
                _push_loop(engine, w, observed) for engine in engines
            )
            hot_path_calls = probe.touches
        for engine in engines:
            engine.finalize()
        latencies = _chunk_latencies(w, reference, observed)
    finally:
        if was_enabled:
            obs.enable()
    n = float(w.n_samples)
    return {
        "name": RECORD_NAME,
        "streaming_cold_samples_per_s": n / stream_cold,
        "streaming_warm_samples_per_s": n / stream_warm,
        "batch_cold_samples_per_s": n / batch_cold,
        "batch_warm_samples_per_s": n / batch_warm,
        "streaming_chunk_p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "streaming_chunk_p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "disabled_obs_overhead": max(0.0, stream_warm / no_obs - 1.0),
        "hot_path_obs_calls": int(hot_path_calls),
        "chunk_samples": int(w.chunk_samples),
        "n_samples": int(w.n_samples),
        "sample_rate": float(w.sample_rate),
        "cpu_count": os.cpu_count(),
    }


def load_baseline_record(path: Path) -> Optional[Dict[str, object]]:
    """First committed ``engine_throughput`` record of a history file.

    The first record is the committed baseline (the same convention
    ``scripts/check_bench_regression.py`` gates against); returns ``None``
    when the file is missing, unreadable, or has no matching record.
    """
    try:
        history = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(history, list):
        return None
    for record in history:
        if isinstance(record, dict) and record.get("name") == RECORD_NAME:
            return record
    return None


def render_comparison(
    record: Dict[str, object], baseline: Optional[Dict[str, object]]
) -> str:
    """Human-readable samples/s/core table, with baseline ratios if any."""
    lines: List[str] = []
    same_machine = baseline is not None and baseline.get(
        "cpu_count"
    ) == record.get("cpu_count")
    for field in (
        "streaming_warm_samples_per_s",
        "streaming_cold_samples_per_s",
        "batch_warm_samples_per_s",
        "batch_cold_samples_per_s",
    ):
        value = float(record[field])  # type: ignore[arg-type]
        line = f"{field:34s} {value:12,.0f}"
        if baseline is not None and isinstance(
            baseline.get(field), (int, float)
        ):
            ref = float(baseline[field])  # type: ignore[arg-type]
            if ref > 0 and same_machine:
                line += f"   {value / ref:6.2f}x vs baseline ({ref:,.0f})"
            elif ref > 0:
                line += f"   (baseline {ref:,.0f}; different machine)"
        lines.append(line)
    for field in LATENCY_FIELDS:
        if field not in record:
            continue
        value = float(record[field])  # type: ignore[arg-type]
        line = f"{field:34s} {value:12.3f}"
        if baseline is not None and isinstance(
            baseline.get(field), (int, float)
        ):
            ref = float(baseline[field])  # type: ignore[arg-type]
            if ref > 0 and same_machine:
                line += f"   {value / ref:6.2f}x vs baseline ({ref:.3f})"
            elif ref > 0:
                line += f"   (baseline {ref:.3f}; different machine)"
        lines.append(line)
    overhead = float(record["disabled_obs_overhead"])  # type: ignore[arg-type]
    lines.append(f"{'disabled_obs_overhead':34s} {overhead:12.2%}")
    lines.append(
        f"{'hot_path_obs_calls':34s} {int(record['hot_path_obs_calls']):12d}"  # type: ignore[call-overload]
    )
    if baseline is None:
        lines.append("(no stored baseline to compare against)")
    return "\n".join(lines)
