"""ROC analysis: the OCC margin ``r`` as an operating-point dial.

Section VII-C explains that ``r`` trades FPR against FNR but the paper only
reports two operating points (r = 0 for the weak baselines, r = 0.3 for
NSYNC).  This module sweeps ``r`` over a campaign cell and returns the full
ROC curve — useful both for picking an operating point on a new printer and
for comparing IDSs by area under the curve rather than a single accuracy.

The sweep is cheap: the expensive part (synchronize + compare every run) is
done once, and each ``r`` only re-applies thresholds to cached features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.occ import OneClassTrainer
from ..core.pipeline import NsyncIds
from ..signals.signal import Signal
from ..sync.base import Synchronizer
from ..sync.dwm import DwmSynchronizer
from .dataset import Campaign, ProcessRun
from .experiments import RAW, _submodule_flags, transform_signal
from .metrics import RocAccumulator

__all__ = ["RocPoint", "RocCurve", "roc_sweep", "auc"]


@dataclass(frozen=True)
class RocPoint:
    """One operating point of the sweep."""

    r: float
    fpr: float
    tpr: float
    accuracy: float


@dataclass(frozen=True)
class RocCurve:
    """The full sweep, ordered by increasing ``r``."""

    points: Tuple[RocPoint, ...]

    @property
    def best(self) -> RocPoint:
        """The operating point with the highest balanced accuracy."""
        return max(self.points, key=lambda p: p.accuracy)

    def fprs(self) -> np.ndarray:
        return np.asarray([p.fpr for p in self.points])

    def tprs(self) -> np.ndarray:
        return np.asarray([p.tpr for p in self.points])


def auc(curve: RocCurve) -> float:
    """Area under the (FPR, TPR) curve via the trapezoid rule.

    The sweep endpoints are extended to (0, 0) and (1, 1) so curves from
    different sweeps are comparable.
    """
    fpr = np.concatenate([[0.0], curve.fprs()[::-1], [1.0]])
    tpr = np.concatenate([[0.0], curve.tprs()[::-1], [1.0]])
    order = np.argsort(fpr, kind="stable")
    return float(np.trapezoid(tpr[order], fpr[order]))


def roc_sweep(
    campaign: Campaign,
    channel: str,
    transform: str = RAW,
    synchronizer: Optional[Synchronizer] = None,
    r_values: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.5, 1.0, 2.0, 4.0),
) -> RocCurve:
    """Sweep the OCC margin over one campaign cell.

    The campaign is consumed as a single run stream: features are computed
    once per run, every ``r`` value re-derives its thresholds from the
    finished training maxima, and per-``r`` verdicts fold into a
    :class:`~repro.eval.metrics.RocAccumulator` — no run or feature list is
    retained, so the sweep works unchanged over a lazy campaign.
    """
    if synchronizer is None:
        synchronizer = DwmSynchronizer(campaign.setup.dwm_params)

    def signal_of(run: ProcessRun) -> Signal:
        return transform_signal(run.signals[channel], channel, transform)

    ids: Optional[NsyncIds] = None
    trainer = OneClassTrainer(r=0.0)
    acc = RocAccumulator(r_values)
    thresholds_by_r: Optional[Dict[float, object]] = None
    for role, run in campaign.iter_runs():
        if role == "reference":
            ids = NsyncIds(signal_of(run), synchronizer)
            continue
        if ids is None:
            raise ValueError("campaign stream yielded runs before the reference")
        if role == "training":
            trainer.add_run(ids.analyze(signal_of(run)).features)
            continue
        if thresholds_by_r is None:
            thresholds_by_r = {r: trainer.thresholds(r=r) for r in acc.r_values}
        features = ids.analyze(signal_of(run)).features
        acc.record(
            run.is_malicious,
            {
                r: any(_submodule_flags(features, th).values())
                for r, th in thresholds_by_r.items()
            },
        )

    points = tuple(
        RocPoint(r=r, fpr=s.fpr, tpr=s.tpr, accuracy=s.accuracy)
        for r, s in acc.points()
    )
    return RocCurve(points=points)
