"""Time-noise models (the phenomenon the paper is built around).

AM systems are asynchronous: the same instruction can take slightly
different time on each run, and the firmware may insert random gaps between
instructions (paper Sections I-II).  The cumulative effect is small relative
to the print duration but large relative to an analysis window — enough to
break naive point-by-point comparison (Fig. 1-2).

:class:`TimeNoiseModel` captures the named sources with two distinct time
scales, matching what Fig. 1 shows (signals aligned at the start drift apart
by the end while staying locally coherent):

* a **slow execution-rate random walk** (thermal/mechanical drift of the
  motion system) that accumulates into seconds of misalignment,
* fast per-move **duration jitter** and random **inter-instruction gaps**
  (queueing, task scheduling),
* rare longer **stalls** (frame drops in the acquisition path).

The model itself is immutable configuration; call :meth:`start` to get a
stateful per-run :class:`TimeNoiseProcess`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TimeNoiseModel", "TimeNoiseProcess", "NO_TIME_NOISE"]


@dataclass(frozen=True)
class TimeNoiseModel:
    """Stochastic timing perturbations applied per executed instruction.

    Parameters
    ----------
    rate_walk_std:
        Per-instruction standard deviation of the log execution-rate random
        walk.  The walk is clamped to +/- ``rate_walk_limit`` so a run never
        drifts absurdly.  This is the dominant, *slow* component of time
        noise.
    duration_jitter:
        Fractional standard deviation of each move's duration on top of the
        rate walk (fast component).  Durations never drop below 10% of
        nominal.
    gap_mean, gap_std:
        Mean and standard deviation (seconds) of the random pause inserted
        after each instruction.  Gaps are clipped at zero.
    stall_probability, stall_duration:
        With this probability an instruction is followed by an additional
        stall of ``stall_duration`` seconds — the "frame drop" tail events.
    """

    rate_walk_std: float = 0.0005
    rate_walk_limit: float = 0.012
    duration_jitter: float = 0.005
    gap_mean: float = 0.002
    gap_std: float = 0.001
    stall_probability: float = 0.001
    stall_duration: float = 0.05

    def __post_init__(self) -> None:
        if self.rate_walk_std < 0:
            raise ValueError("rate_walk_std must be non-negative")
        if self.rate_walk_limit < 0:
            raise ValueError("rate_walk_limit must be non-negative")
        if self.duration_jitter < 0:
            raise ValueError("duration_jitter must be non-negative")
        if self.gap_mean < 0 or self.gap_std < 0:
            raise ValueError("gap parameters must be non-negative")
        if not 0 <= self.stall_probability <= 1:
            raise ValueError("stall_probability must be in [0, 1]")
        if self.stall_duration < 0:
            raise ValueError("stall_duration must be non-negative")

    @property
    def is_silent(self) -> bool:
        """True when the model never perturbs timing."""
        return (
            self.rate_walk_std == 0
            and self.duration_jitter == 0
            and self.gap_mean == 0
            and self.gap_std == 0
            and self.stall_probability == 0
        )

    def start(self, rng: np.random.Generator) -> "TimeNoiseProcess":
        """Create the stateful per-run sampler."""
        return TimeNoiseProcess(self, rng)


class TimeNoiseProcess:
    """Per-run time-noise state: the rate walk plus the fast jitter."""

    def __init__(self, model: TimeNoiseModel, rng: np.random.Generator) -> None:
        self.model = model
        self.rng = rng
        self._log_rate = 0.0

    @property
    def rate(self) -> float:
        """Current execution-rate multiplier (1.0 = nominal speed)."""
        return float(np.exp(self._log_rate))

    def perturb_duration(self, duration: float) -> float:
        """Jitter one move's duration and advance the rate walk."""
        model = self.model
        if duration <= 0 or model.is_silent:
            return duration
        if model.rate_walk_std > 0:
            self._log_rate += model.rate_walk_std * self.rng.standard_normal()
            limit = model.rate_walk_limit
            self._log_rate = float(np.clip(self._log_rate, -limit, limit))
        stretched = duration * self.rate
        if model.duration_jitter > 0:
            factor = 1.0 + model.duration_jitter * self.rng.standard_normal()
            stretched *= max(factor, 0.1)
        return stretched

    def sample_gap(self) -> float:
        """Random pause after one instruction (seconds, >= 0)."""
        model = self.model
        gap = 0.0
        if model.gap_mean > 0 or model.gap_std > 0:
            gap = max(
                0.0, model.gap_mean + model.gap_std * self.rng.standard_normal()
            )
        if model.stall_probability > 0 and self.rng.random() < model.stall_probability:
            gap += model.stall_duration
        return gap


#: A model that leaves timing untouched — for controlled experiments that
#: isolate the effect of time noise (e.g. the Fig. 2 ablation).
NO_TIME_NOISE = TimeNoiseModel(
    rate_walk_std=0.0,
    duration_jitter=0.0,
    gap_mean=0.0,
    gap_std=0.0,
    stall_probability=0.0,
    stall_duration=0.0,
)
