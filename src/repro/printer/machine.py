"""Machine definitions for the two printers of the evaluation.

The paper's testbed is an Ultimaker 3 (the most popular Cartesian desktop
printer) and a SeeMeCNC Rostock Max V3 (a popular delta).  A
:class:`MachineConfig` bundles everything the firmware simulator needs:
kinematics, dynamics limits, thermal constants, and the simulation rate the
machine-state trace is sampled at.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .kinematics import CartesianKinematics, DeltaKinematics, Kinematics

__all__ = ["MachineConfig", "ULTIMAKER3", "ROSTOCK_MAX_V3"]


@dataclass(frozen=True)
class MachineConfig:
    """Static description of one FDM printer.

    ``acceleration`` (mm/s^2) and ``max_feedrate`` (mm/s) bound the motion
    planner.  ``hotend_tau`` / ``bed_tau`` are first-order thermal time
    constants (s).  ``sim_rate`` (Hz) is the sampling rate of the simulated
    machine-state trace; sensors derive their own rates from it, so it
    bounds the bandwidth of every simulated side channel.
    """

    name: str
    kinematics: Kinematics
    acceleration: float = 3000.0
    max_feedrate: float = 150.0
    sim_rate: float = 500.0
    hotend_tau: float = 12.0
    bed_tau: float = 60.0
    ambient_temp: float = 25.0
    max_temp_wait: float = 2.0
    lookahead: bool = False
    junction_deviation: float = 0.05

    def __post_init__(self) -> None:
        if self.acceleration <= 0:
            raise ValueError(f"acceleration must be positive, got {self.acceleration}")
        if self.max_feedrate <= 0:
            raise ValueError(f"max_feedrate must be positive, got {self.max_feedrate}")
        if self.sim_rate <= 0:
            raise ValueError(f"sim_rate must be positive, got {self.sim_rate}")

    def with_sim_rate(self, sim_rate: float) -> "MachineConfig":
        """A copy sampled at a different simulation rate."""
        return replace(self, sim_rate=sim_rate)


#: Ultimaker 3: Cartesian bed-slinger-style gantry, brisk acceleration.
ULTIMAKER3 = MachineConfig(
    name="UM3",
    kinematics=CartesianKinematics(),
    acceleration=3000.0,
    max_feedrate=150.0,
)

#: SeeMeCNC Rostock Max V3: delta with long arms and lighter effector.
ROSTOCK_MAX_V3 = MachineConfig(
    name="RM3",
    kinematics=DeltaKinematics(arm_length=291.06, tower_radius=200.0),
    acceleration=1800.0,
    max_feedrate=200.0,
)
