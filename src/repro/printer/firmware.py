"""Firmware simulator: executes G-code and produces a machine-state trace.

The :class:`Firmware` plays the role of the printer's controller board: it
consumes a :class:`~repro.printer.gcode.GcodeProgram`, plans every move with
the trapezoidal planner, applies the time-noise model (per-move jitter +
inter-instruction gaps), integrates a first-order thermal model, and samples
the full machine state onto a uniform grid.  The resulting
:class:`MachineTrace` is the single source every simulated sensor draws
from, so all side channels of one run share the same (noisy) timeline —
exactly the property the paper exploits in Fig. 10.

A *firmware attack* is modelled by giving the firmware a command transformer
that rewrites instructions at execution time, after the (benign) G-code has
been received.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from .. import obs
from .gcode import GcodeCommand, GcodeProgram
from .machine import MachineConfig
from .motion import TrapezoidalProfile, plan_move
from .noise import NO_TIME_NOISE, TimeNoiseModel, TimeNoiseProcess

__all__ = ["MachineTrace", "Firmware", "simulate_print"]

CommandTransformer = Callable[[GcodeCommand], GcodeCommand]

# Cached lazy import: the IIR thermal track uses scipy when available and
# silently falls back to the recursive loop otherwise.
_LFILTER = None


def _get_lfilter():
    global _LFILTER
    if _LFILTER is None:
        try:
            from scipy.signal import lfilter
        except ImportError:  # pragma: no cover - scipy is a hard dep in CI
            lfilter = False
        _LFILTER = lfilter
    return _LFILTER


@dataclass
class MachineTrace:
    """Uniformly sampled machine state over one printing process.

    All arrays share the first dimension (``n_samples`` at ``sim_rate``).
    Positions are tool coordinates in mm; joints are actuator coordinates
    (axes for a Cartesian machine, carriage heights for a delta).
    """

    sim_rate: float
    times: np.ndarray             # (n,)
    position: np.ndarray          # (n, 3) tool x, y, z
    velocity: np.ndarray          # (n, 3)
    acceleration: np.ndarray      # (n, 3)
    joint_position: np.ndarray    # (n, J)
    joint_velocity: np.ndarray    # (n, J)
    extrusion_rate: np.ndarray    # (n,) filament mm/s
    hotend_temp: np.ndarray       # (n,) degC
    bed_temp: np.ndarray          # (n,) degC
    fan: np.ndarray               # (n,) 0..1
    command_index: np.ndarray     # (n,) which program command was executing
    layer_index: np.ndarray       # (n,) current layer number (0-based)
    layer_change_times: List[float] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return int(self.times.shape[0])

    @property
    def duration(self) -> float:
        return self.n_samples / self.sim_rate

    @property
    def n_joints(self) -> int:
        return int(self.joint_position.shape[1])

    # ------------------------------------------------------------------
    # Forensics: sample index <-> (instruction, print time) mapping.
    # ------------------------------------------------------------------
    def sample_index_at(self, t: float) -> int:
        """Sample index at print time ``t`` seconds (clamped into range)."""
        return int(np.clip(round(t * self.sim_rate), 0, self.n_samples - 1))

    def instruction_at(self, sample_index: int) -> int:
        """Program command index executing at ``sample_index``."""
        i = int(np.clip(sample_index, 0, self.n_samples - 1))
        return int(self.command_index[i])

    def time_of_sample(self, sample_index: int) -> float:
        """Print time in seconds of ``sample_index``."""
        i = int(np.clip(sample_index, 0, self.n_samples - 1))
        return float(self.times[i])

    def instruction_span(self, t_start: float, t_stop: float) -> Tuple[int, int]:
        """Half-open program-command span executing in ``[t_start, t_stop)``.

        This is the join an incident report needs: an alarm's analysis
        window maps to a time interval, and this maps the interval onto
        the G-code instructions that were executing then.  The interval is
        clamped to the trace; a degenerate interval collapses to the
        single instruction at ``t_start``.
        """
        lo = self.sample_index_at(min(t_start, t_stop))
        hi = self.sample_index_at(max(t_start, t_stop))
        window = self.command_index[lo : hi + 1]
        if window.size == 0:  # pragma: no cover - clamping prevents this
            cmd = self.instruction_at(lo)
            return cmd, cmd + 1
        return int(window.min()), int(window.max()) + 1


@dataclass
class _MoveSegment:
    """One planned move placed on the global timeline."""

    t_start: float
    duration: float          # actual (jittered) duration
    profile: TrapezoidalProfile
    start_xyz: np.ndarray
    direction: np.ndarray    # unit vector in tool space (zeros for E-only)
    e_start: float
    e_delta: float
    command_index: int
    layer_index: int


class Firmware:
    """G-code executor with a stochastic timing model.

    Parameters
    ----------
    machine:
        Static machine description (kinematics, limits, thermal constants).
    time_noise:
        The timing perturbation model; defaults to no noise so that unit
        tests of the kinematic pipeline stay deterministic.
    transformer:
        Optional command rewriter applied at execution time — the hook used
        to model firmware-level attacks.
    """

    def __init__(
        self,
        machine: MachineConfig,
        time_noise: TimeNoiseModel = NO_TIME_NOISE,
        transformer: Optional[CommandTransformer] = None,
    ) -> None:
        self.machine = machine
        self.time_noise = time_noise
        self.transformer = transformer

    # ------------------------------------------------------------------
    def run(
        self, program: GcodeProgram, rng: Optional[np.random.Generator] = None
    ) -> MachineTrace:
        """Execute ``program`` and return the sampled machine trace."""
        rng = rng if rng is not None else np.random.default_rng()
        noise = self.time_noise.start(rng)
        from .arcs import segment_arcs

        with obs.trace("repro.printer.firmware.run"):
            program = segment_arcs(program)  # no-op when there are no G2/G3
            with obs.trace("schedule"):
                segments, events = self._schedule(program, noise)
            with obs.trace("sample") as span:
                trace = self._sample(segments, events)
        if obs.enabled():
            obs.counter("repro.printer.firmware.runs").inc()
            obs.counter("repro.printer.firmware.segments").inc(len(segments))
            if span.wall > 0:
                obs.gauge("repro.printer.firmware.samples_per_s").set(
                    trace.n_samples / span.wall
                )
        return trace

    # ------------------------------------------------------------------
    # Scheduling: walk the program and lay segments on the timeline.
    # ------------------------------------------------------------------
    def _schedule(
        self, program: GcodeProgram, noise: "TimeNoiseProcess"
    ) -> Tuple[List[_MoveSegment], dict]:
        machine = self.machine
        pos = np.zeros(3)
        e_pos = 0.0
        feedrate = 30.0  # mm/s default until the first F parameter
        hotend_target = machine.ambient_temp
        bed_target = machine.ambient_temp
        fan = 0.0
        t = 0.0
        layer = 0
        current_z: Optional[float] = None
        relative_xyz = False  # G90 (absolute) is the power-on default
        relative_e = False    # M82 (absolute extruder) likewise

        segments: List[_MoveSegment] = []
        # Step events for the slow state (targets change instantaneously,
        # the thermal filter smooths them at sampling time).
        hotend_events: List[Tuple[float, float]] = [(0.0, hotend_target)]
        bed_events: List[Tuple[float, float]] = [(0.0, bed_target)]
        fan_events: List[Tuple[float, float]] = [(0.0, fan)]
        layer_changes: List[float] = []

        # Moves are queued and planned in chains so the optional look-ahead
        # planner can join them at nonzero junction speeds; the stop-to-stop
        # planner simply plans each queued move independently.
        pending: List[dict] = []

        def flush_moves() -> None:
            nonlocal t
            if not pending:
                return
            movers = [p for p in pending if p["path_length"] > 0]
            if machine.lookahead and len(movers) > 1 and movers == pending:
                from .lookahead import plan_chain

                profiles = plan_chain(
                    [p["direction"] for p in pending],
                    [p["path_length"] for p in pending],
                    [p["feedrate"] for p in pending],
                    machine.acceleration,
                    machine.junction_deviation,
                )
            else:
                profiles = [
                    plan_move(
                        p["path_length"], p["feedrate"], machine.acceleration
                    )
                    for p in pending
                ]
            for p, profile in zip(pending, profiles):
                if p["starts_layer"]:
                    layer_changes.append(t)
                duration = noise.perturb_duration(profile.duration)
                segments.append(
                    _MoveSegment(
                        t_start=t,
                        duration=duration,
                        profile=profile,
                        start_xyz=p["start"],
                        direction=p["direction"],
                        e_start=p["e_start"],
                        e_delta=p["e_delta"],
                        command_index=p["index"],
                        layer_index=p["layer"],
                    )
                )
                t += duration
                if not machine.lookahead:
                    t += noise.sample_gap()
            if machine.lookahead:
                # Joined moves flow through the planner buffer; the random
                # queueing gap appears once per chain, not per move.
                t += noise.sample_gap()
            pending.clear()

        for index, raw_command in enumerate(program):
            command = (
                self.transformer(raw_command) if self.transformer else raw_command
            )
            code = command.code

            if command.is_move:
                f = command.get("F")
                if f is not None:
                    feedrate = min(f / 60.0, machine.max_feedrate)
                target = pos.copy()
                for axis, k in enumerate("XYZ"):
                    value = command.get(k)
                    if value is not None:
                        target[axis] = pos[axis] + value if relative_xyz else value
                e_value = command.get("E")
                if e_value is None:
                    e_target = e_pos
                elif relative_e:
                    e_target = e_pos + e_value
                else:
                    e_target = e_value

                starts_layer = False
                z = command.get("Z")
                if z is not None and (current_z is None or z > current_z):
                    if current_z is not None:
                        layer += 1
                        starts_layer = True
                    current_z = z

                delta = target - pos
                distance = float(np.linalg.norm(delta))
                e_delta = float(e_target - e_pos)
                if distance > 0:
                    pending.append(
                        {
                            "direction": delta / distance,
                            "path_length": distance,
                            "feedrate": feedrate,
                            "start": pos.copy(),
                            "e_start": e_pos,
                            "e_delta": e_delta,
                            "index": index,
                            "layer": layer,
                            "starts_layer": starts_layer,
                        }
                    )
                elif abs(e_delta) > 0:
                    # Extruder-only move (retraction): the head stops, so it
                    # breaks any look-ahead chain.
                    flush_moves()
                    pending.append(
                        {
                            "direction": np.zeros(3),
                            "path_length": abs(e_delta),
                            "feedrate": feedrate,
                            "start": pos.copy(),
                            "e_start": e_pos,
                            "e_delta": e_delta,
                            "index": index,
                            "layer": layer,
                            "starts_layer": starts_layer,
                        }
                    )
                    flush_moves()
                elif starts_layer:
                    # A zero-length layer marker: record it in execution
                    # order by flushing what came before it first.
                    flush_moves()
                    layer_changes.append(t)
                pos = target
                e_pos = float(e_target)

            elif code == "G28":  # home: move to origin at a fixed rate
                flush_moves()
                distance = float(np.linalg.norm(pos))
                if distance > 0:
                    profile = plan_move(distance, 50.0, machine.acceleration)
                    duration = noise.perturb_duration(profile.duration)
                    segments.append(
                        _MoveSegment(
                            t_start=t,
                            duration=duration,
                            profile=profile,
                            start_xyz=pos.copy(),
                            direction=-pos / distance,
                            e_start=e_pos,
                            e_delta=0.0,
                            command_index=index,
                            layer_index=layer,
                        )
                    )
                    t += duration
                pos = np.zeros(3)
                current_z = None

            elif code == "G90":  # absolute positioning (XYZ and E)
                relative_xyz = False
                relative_e = False
            elif code == "G91":  # relative positioning (XYZ and E)
                relative_xyz = True
                relative_e = True
            elif code == "M82":  # absolute extruder
                relative_e = False
            elif code == "M83":  # relative extruder
                relative_e = True

            elif code == "G92":  # reset logical positions
                flush_moves()
                for axis, k in enumerate("XYZ"):
                    value = command.get(k)
                    if value is not None:
                        pos[axis] = value
                e = command.get("E")
                if e is not None:
                    e_pos = float(e)

            elif code == "G4":  # dwell: P (ms) or S (s)
                flush_moves()
                t += (command.get("P", 0.0) or 0.0) / 1000.0
                t += command.get("S", 0.0) or 0.0

            elif code in ("M104", "M109"):
                flush_moves()
                hotend_target = command.get("S", hotend_target)
                hotend_events.append((t, hotend_target))
                if code == "M109":
                    t += self._wait_time(machine.hotend_tau)
            elif code in ("M140", "M190"):
                flush_moves()
                bed_target = command.get("S", bed_target)
                bed_events.append((t, bed_target))
                if code == "M190":
                    t += self._wait_time(machine.bed_tau)
            elif code == "M106":
                flush_moves()
                fan = float(np.clip(command.get("S", 255.0) / 255.0, 0.0, 1.0))
                fan_events.append((t, fan))
            elif code == "M107":
                flush_moves()
                fan = 0.0
                fan_events.append((t, fan))
            # Unknown codes are ignored, as real firmwares do.

        flush_moves()

        events = {
            "hotend": hotend_events,
            "bed": bed_events,
            "fan": fan_events,
            "layer_changes": layer_changes,
            "total_time": t,
        }
        return segments, events

    def _wait_time(self, tau: float) -> float:
        """Time M109/M190 blocks, capped by the machine's wait limit."""
        # First-order system reaches ~95% of a step in 3 tau.
        return min(3.0 * tau, self.machine.max_temp_wait)

    # ------------------------------------------------------------------
    # Sampling: turn segments + events into uniform arrays.
    # ------------------------------------------------------------------
    def _sample(
        self,
        segments: List[_MoveSegment],
        events: dict,
        vectorized: bool = True,
    ) -> MachineTrace:
        machine = self.machine
        fs = machine.sim_rate
        total = events["total_time"]
        n = max(2, int(np.ceil(total * fs)) + 1)
        times = np.arange(n) / fs

        motion = (
            self._motion_arrays(times, segments)
            if vectorized
            else self._motion_arrays_loop(times, segments)
        )
        position, velocity, acceleration, extrusion = motion[:4]
        command_index, layer_index = motion[4:]

        hotend = self._thermal_track(times, events["hotend"], machine.hotend_tau)
        bed = self._thermal_track(times, events["bed"], machine.bed_tau)
        fan = self._step_track(times, events["fan"])

        joint_pos = machine.kinematics.joint_positions(position)
        joint_vel = np.gradient(joint_pos, 1.0 / fs, axis=0)

        return MachineTrace(
            sim_rate=fs,
            times=times,
            position=position,
            velocity=velocity,
            acceleration=acceleration,
            joint_position=joint_pos,
            joint_velocity=joint_vel,
            extrusion_rate=extrusion,
            hotend_temp=hotend,
            bed_temp=bed,
            fan=fan,
            command_index=command_index,
            layer_index=layer_index,
            layer_change_times=list(events["layer_changes"]),
        )

    def _sample_loop(
        self, segments: List[_MoveSegment], events: dict
    ) -> MachineTrace:
        """Reference implementation sampling with the per-segment loop."""
        return self._sample(segments, events, vectorized=False)

    @staticmethod
    def _segment_bounds(
        times: np.ndarray, segments: List[_MoveSegment], fs: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched sample-index bounds ``[i0, i1)`` of every segment."""
        n = times.shape[0]
        starts = np.array([seg.t_start for seg in segments])
        ends = starts + np.array([seg.duration for seg in segments])
        i0s = np.minimum(np.ceil(starts * fs).astype(np.intp), n)
        i1s = np.minimum(np.ceil(ends * fs).astype(np.intp), n)
        return i0s, i1s

    def _motion_arrays(
        self, times: np.ndarray, segments: List[_MoveSegment]
    ) -> Tuple[np.ndarray, ...]:
        """Motion state on the sampling grid, batched over all segments.

        Instead of evaluating each segment's trapezoidal profile in a
        Python loop, every active sample of the whole print is gathered
        into one flat batch: per-segment parameters are repeated per
        sample, the piecewise closed form is evaluated once over the
        batch, and idle holds between moves are filled with
        ``searchsorted`` over the (monotone) segment boundaries.  The
        arithmetic is element-for-element the same as the loop reference,
        so outputs match it exactly.
        """
        n = times.shape[0]
        position = np.zeros((n, 3))
        velocity = np.zeros((n, 3))
        acceleration = np.zeros((n, 3))
        extrusion = np.zeros(n)
        command_index = np.zeros(n, dtype=np.intp)
        layer_index = np.zeros(n, dtype=np.intp)
        if not segments:
            return (
                position, velocity, acceleration, extrusion,
                command_index, layer_index,
            )

        fs = self.machine.sim_rate
        i0s, i1s = self._segment_bounds(times, segments, fs)

        # Per-segment parameter vectors.
        t_starts = np.array([seg.t_start for seg in segments])
        jit_durs = np.array([seg.duration for seg in segments])
        p_dist = np.array([seg.profile.distance for seg in segments])
        p_vpeak = np.array([seg.profile.v_peak for seg in segments])
        # Look-ahead chains produce GeneralProfile segments entered at a
        # nonzero junction speed; stop-to-stop TrapezoidalProfile has no
        # v_start attribute and starts from rest.
        p_vstart = np.array(
            [getattr(seg.profile, "v_start", 0.0) for seg in segments]
        )
        p_accel = np.array([seg.profile.accel for seg in segments])
        p_taccel = np.array([seg.profile.t_accel for seg in segments])
        p_tcruise = np.array([seg.profile.t_cruise for seg in segments])
        p_tdecel = np.array([seg.profile.t_decel for seg in segments])
        p_dur = p_taccel + p_tcruise + p_tdecel
        starts_xyz = np.stack([seg.start_xyz for seg in segments])
        directions = np.stack([seg.direction for seg in segments])
        e_deltas = np.array([seg.e_delta for seg in segments])
        cmd_ids = np.array(
            [seg.command_index for seg in segments], dtype=np.intp
        )
        layer_ids = np.array(
            [seg.layer_index for seg in segments], dtype=np.intp
        )
        end_positions = starts_xyz + directions * p_dist[:, np.newaxis]

        # Jitter stretches real time; the profile is defined over the
        # nominal duration, so active times map through the stretch factor.
        stretch = np.ones_like(jit_durs)
        np.divide(p_dur, jit_durs, out=stretch, where=jit_durs > 0)
        e_frac = np.zeros_like(e_deltas)
        np.divide(e_deltas, p_dist, out=e_frac, where=p_dist > 0)

        # Flatten every segment's [i0, i1) sample range into one batch.
        counts = i1s - i0s
        total = int(counts.sum())
        if total:
            offsets = np.cumsum(counts) - counts
            within = np.arange(total) - np.repeat(offsets, counts)
            active = np.repeat(i0s, counts) + within

            rep = lambda a: np.repeat(a, counts)  # noqa: E731
            tau = (times[active] - rep(t_starts)) * rep(stretch)
            r_dur, r_dist = rep(p_dur), rep(p_dist)
            r_vpeak, r_accel = rep(p_vpeak), rep(p_accel)
            r_vstart = rep(p_vstart)
            r_taccel, r_tcruise = rep(p_taccel), rep(p_tcruise)

            # position(tau), clamped exactly as the profile classes do;
            # the v_start terms are written first to mirror GeneralProfile
            # term order (they vanish exactly for v_start == 0).  t_accel
            # is squared with Python pow like the scalar attribute in the
            # profile methods — see the stretch_sq note below.
            taccel_sq = np.array([x**2 for x in p_taccel.tolist()])
            tc = np.clip(tau, 0.0, r_dur)
            d_accel = r_vstart * r_taccel + 0.5 * r_accel * rep(taccel_sq)
            d_cruise = r_vpeak * r_tcruise
            in_accel = tc < r_taccel
            in_cruise = (~in_accel) & (tc < r_taccel + r_tcruise)
            in_decel = ~(in_accel | in_cruise)
            s = np.empty_like(tc)
            s[in_accel] = (
                r_vstart[in_accel] * tc[in_accel]
                + 0.5 * r_accel[in_accel] * tc[in_accel] ** 2
            )
            s[in_cruise] = d_accel[in_cruise] + r_vpeak[in_cruise] * (
                tc[in_cruise] - r_taccel[in_cruise]
            )
            td = tc[in_decel] - r_taccel[in_decel] - r_tcruise[in_decel]
            s[in_decel] = (
                d_accel[in_decel]
                + d_cruise[in_decel]
                + r_vpeak[in_decel] * td
                - 0.5 * r_accel[in_decel] * td**2
            )
            s = np.minimum(s, r_dist)

            # velocity(tau) and acceleration(tau) on the *unclamped* tau,
            # mirroring the profile methods' phase masks.
            v = np.zeros_like(tau)
            in_move = (tau >= 0.0) & (tau <= r_dur)
            tm = tau[in_move]
            vm = np.empty_like(tm)
            m_taccel, m_tcruise = r_taccel[in_move], r_tcruise[in_move]
            m_vpeak, m_accel = r_vpeak[in_move], r_accel[in_move]
            m_vstart = r_vstart[in_move]
            accel_phase = tm < m_taccel
            cruise_phase = (~accel_phase) & (tm < m_taccel + m_tcruise)
            decel_phase = ~(accel_phase | cruise_phase)
            vm[accel_phase] = (
                m_vstart[accel_phase] + m_accel[accel_phase] * tm[accel_phase]
            )
            vm[cruise_phase] = m_vpeak[cruise_phase]
            tdv = (
                tm[decel_phase]
                - m_taccel[decel_phase]
                - m_tcruise[decel_phase]
            )
            vm[decel_phase] = np.maximum(
                m_vpeak[decel_phase] - m_accel[decel_phase] * tdv, 0.0
            )
            v[in_move] = vm

            a = np.zeros_like(tau)
            accel_sel = (tau >= 0.0) & (tau < r_taccel)
            a[accel_sel] = r_accel[accel_sel]
            lo = r_taccel + r_tcruise
            decel_sel = (tau >= lo) & (tau <= r_dur)
            a[decel_sel] = -r_accel[decel_sel]

            r_stretch = rep(stretch)
            # Python-pow squares to stay bit-exact with the loop reference
            # (numpy's array ** 2 can differ from scalar ** 2 by one ulp).
            stretch_sq = np.array([x**2 for x in stretch.tolist()])
            seg_of = np.repeat(np.arange(len(segments)), counts)
            r_dir = directions[seg_of]
            v_scaled = v * r_stretch
            position[active] = starts_xyz[seg_of] + s[:, np.newaxis] * r_dir
            velocity[active] = v_scaled[:, np.newaxis] * r_dir
            acceleration[active] = (
                a * rep(stretch_sq)
            )[:, np.newaxis] * r_dir
            extrusion[active] = v_scaled * rep(e_frac)
            command_index[active] = rep(cmd_ids)
            layer_index[active] = rep(layer_ids)

        # Idle samples: hold the end position of the last segment whose
        # sampling window closed at or before them (zeros before the first
        # move), and the most recent written command/layer value.
        coverage = np.zeros(n + 1, dtype=np.intp)
        np.add.at(coverage, i0s, 1)
        np.add.at(coverage, i1s, -1)
        written = np.cumsum(coverage[:-1]) > 0
        idle = np.flatnonzero(~written)
        if idle.size:
            last_done = np.searchsorted(i1s, idle, side="right") - 1
            has_prev = last_done >= 0
            position[idle[has_prev]] = end_positions[last_done[has_prev]]
            fill_from = np.maximum.accumulate(
                np.where(written, np.arange(n), 0)
            )
            command_index[idle] = command_index[fill_from[idle]]
            layer_index[idle] = layer_index[fill_from[idle]]

        return (
            position, velocity, acceleration, extrusion,
            command_index, layer_index,
        )

    def _motion_arrays_loop(
        self, times: np.ndarray, segments: List[_MoveSegment]
    ) -> Tuple[np.ndarray, ...]:
        """Original serial sampling loop, kept as the regression reference."""
        n = times.shape[0]
        fs = self.machine.sim_rate
        position = np.zeros((n, 3))
        velocity = np.zeros((n, 3))
        acceleration = np.zeros((n, 3))
        extrusion = np.zeros(n)
        command_index = np.zeros(n, dtype=np.intp)
        layer_index = np.zeros(n, dtype=np.intp)

        # Hold the last position between moves.
        last_pos = np.zeros(3)
        cursor = 0
        for seg in segments:
            i0 = int(np.ceil(seg.t_start * fs))
            i1 = int(np.ceil((seg.t_start + seg.duration) * fs))
            i0, i1 = min(i0, n), min(i1, n)
            # idle gap before this segment holds the previous position
            position[cursor:i0] = last_pos
            if cursor > 0:
                command_index[cursor:i0] = command_index[cursor - 1]
                layer_index[cursor:i0] = layer_index[cursor - 1]

            if i1 > i0:
                local_t = times[i0:i1] - seg.t_start
                # Jitter stretches real time; the profile is defined over the
                # nominal duration, so map through the stretch factor.
                stretch = (
                    seg.profile.duration / seg.duration
                    if seg.duration > 0
                    else 1.0
                )
                tau = local_t * stretch
                s = seg.profile.position(tau)
                v = seg.profile.velocity(tau) * stretch
                a = seg.profile.acceleration(tau) * stretch**2
                position[i0:i1] = seg.start_xyz + np.outer(s, seg.direction)
                velocity[i0:i1] = np.outer(v, seg.direction)
                acceleration[i0:i1] = np.outer(a, seg.direction)
                if seg.profile.distance > 0:
                    frac = seg.e_delta / seg.profile.distance
                    extrusion[i0:i1] = v * frac
                command_index[i0:i1] = seg.command_index
                layer_index[i0:i1] = seg.layer_index
            end = seg.start_xyz + seg.direction * seg.profile.distance
            last_pos = end
            cursor = max(cursor, i1)
        position[cursor:] = last_pos
        if cursor > 0 and cursor < n:
            command_index[cursor:] = command_index[cursor - 1]
            layer_index[cursor:] = layer_index[cursor - 1]
        return (
            position, velocity, acceleration, extrusion,
            command_index, layer_index,
        )

    def _thermal_track(
        self, times: np.ndarray, events: List[Tuple[float, float]], tau: float
    ) -> np.ndarray:
        """First-order response to a piecewise-constant target.

        The recursion ``out[i] = out[i-1] + alpha * (target[i] - out[i-1])``
        is a one-pole IIR filter, evaluated in C via ``scipy.signal.lfilter``
        (with the ambient temperature as the initial condition).  Falls back
        to the explicit loop when scipy is unavailable.
        """
        lfilter = _get_lfilter()
        if lfilter is False:
            return self._thermal_track_loop(times, events, tau)
        with obs.trace("thermal"):
            target = self._step_track(times, events)
            out = np.empty_like(target)
            out[0] = self.machine.ambient_temp
            alpha = (1.0 / self.machine.sim_rate) / max(tau, 1e-6)
            alpha = min(alpha, 1.0)
            if out.size > 1:
                out[1:], _ = lfilter(
                    [alpha],
                    [1.0, alpha - 1.0],
                    target[1:],
                    zi=np.array([(1.0 - alpha) * out[0]]),
                )
        return out

    def _thermal_track_loop(
        self, times: np.ndarray, events: List[Tuple[float, float]], tau: float
    ) -> np.ndarray:
        """Loop-form thermal recursion, kept as the regression reference."""
        target = self._step_track(times, events)
        out = np.empty_like(target)
        out[0] = self.machine.ambient_temp
        alpha = (1.0 / self.machine.sim_rate) / max(tau, 1e-6)
        alpha = min(alpha, 1.0)
        for i in range(1, out.size):
            out[i] = out[i - 1] + alpha * (target[i] - out[i - 1])
        return out

    @staticmethod
    def _step_track(
        times: np.ndarray, events: List[Tuple[float, float]]
    ) -> np.ndarray:
        """Piecewise-constant value track from (time, value) step events."""
        out = np.zeros_like(times)
        if not events:
            return out
        events = sorted(events)
        values = np.array([v for _, v in events])
        starts = np.array([t for t, _ in events])
        idx = np.searchsorted(starts, times, side="right") - 1
        idx = np.clip(idx, 0, len(events) - 1)
        return values[idx]


def simulate_print(
    program: GcodeProgram,
    machine: MachineConfig,
    time_noise: TimeNoiseModel = NO_TIME_NOISE,
    seed: Optional[int] = None,
    transformer: Optional[CommandTransformer] = None,
) -> MachineTrace:
    """One-call convenience wrapper around :class:`Firmware`."""
    rng = np.random.default_rng(seed)
    return Firmware(machine, time_noise, transformer).run(program, rng)
