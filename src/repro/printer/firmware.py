"""Firmware simulator: executes G-code and produces a machine-state trace.

The :class:`Firmware` plays the role of the printer's controller board: it
consumes a :class:`~repro.printer.gcode.GcodeProgram`, plans every move with
the trapezoidal planner, applies the time-noise model (per-move jitter +
inter-instruction gaps), integrates a first-order thermal model, and samples
the full machine state onto a uniform grid.  The resulting
:class:`MachineTrace` is the single source every simulated sensor draws
from, so all side channels of one run share the same (noisy) timeline —
exactly the property the paper exploits in Fig. 10.

A *firmware attack* is modelled by giving the firmware a command transformer
that rewrites instructions at execution time, after the (benign) G-code has
been received.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from .gcode import GcodeCommand, GcodeProgram
from .kinematics import Kinematics
from .machine import MachineConfig
from .motion import TrapezoidalProfile, plan_move
from .noise import NO_TIME_NOISE, TimeNoiseModel, TimeNoiseProcess

__all__ = ["MachineTrace", "Firmware", "simulate_print"]

CommandTransformer = Callable[[GcodeCommand], GcodeCommand]


@dataclass
class MachineTrace:
    """Uniformly sampled machine state over one printing process.

    All arrays share the first dimension (``n_samples`` at ``sim_rate``).
    Positions are tool coordinates in mm; joints are actuator coordinates
    (axes for a Cartesian machine, carriage heights for a delta).
    """

    sim_rate: float
    times: np.ndarray             # (n,)
    position: np.ndarray          # (n, 3) tool x, y, z
    velocity: np.ndarray          # (n, 3)
    acceleration: np.ndarray      # (n, 3)
    joint_position: np.ndarray    # (n, J)
    joint_velocity: np.ndarray    # (n, J)
    extrusion_rate: np.ndarray    # (n,) filament mm/s
    hotend_temp: np.ndarray       # (n,) degC
    bed_temp: np.ndarray          # (n,) degC
    fan: np.ndarray               # (n,) 0..1
    command_index: np.ndarray     # (n,) which program command was executing
    layer_index: np.ndarray       # (n,) current layer number (0-based)
    layer_change_times: List[float] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return int(self.times.shape[0])

    @property
    def duration(self) -> float:
        return self.n_samples / self.sim_rate

    @property
    def n_joints(self) -> int:
        return int(self.joint_position.shape[1])


@dataclass
class _MoveSegment:
    """One planned move placed on the global timeline."""

    t_start: float
    duration: float          # actual (jittered) duration
    profile: TrapezoidalProfile
    start_xyz: np.ndarray
    direction: np.ndarray    # unit vector in tool space (zeros for E-only)
    e_start: float
    e_delta: float
    command_index: int
    layer_index: int


class Firmware:
    """G-code executor with a stochastic timing model.

    Parameters
    ----------
    machine:
        Static machine description (kinematics, limits, thermal constants).
    time_noise:
        The timing perturbation model; defaults to no noise so that unit
        tests of the kinematic pipeline stay deterministic.
    transformer:
        Optional command rewriter applied at execution time — the hook used
        to model firmware-level attacks.
    """

    def __init__(
        self,
        machine: MachineConfig,
        time_noise: TimeNoiseModel = NO_TIME_NOISE,
        transformer: Optional[CommandTransformer] = None,
    ) -> None:
        self.machine = machine
        self.time_noise = time_noise
        self.transformer = transformer

    # ------------------------------------------------------------------
    def run(
        self, program: GcodeProgram, rng: Optional[np.random.Generator] = None
    ) -> MachineTrace:
        """Execute ``program`` and return the sampled machine trace."""
        rng = rng if rng is not None else np.random.default_rng()
        noise = self.time_noise.start(rng)
        from .arcs import segment_arcs

        program = segment_arcs(program)  # no-op when there are no G2/G3
        segments, events = self._schedule(program, noise)
        return self._sample(segments, events)

    # ------------------------------------------------------------------
    # Scheduling: walk the program and lay segments on the timeline.
    # ------------------------------------------------------------------
    def _schedule(
        self, program: GcodeProgram, noise: "TimeNoiseProcess"
    ) -> Tuple[List[_MoveSegment], dict]:
        machine = self.machine
        pos = np.zeros(3)
        e_pos = 0.0
        feedrate = 30.0  # mm/s default until the first F parameter
        hotend_target = machine.ambient_temp
        bed_target = machine.ambient_temp
        fan = 0.0
        t = 0.0
        layer = 0
        current_z: Optional[float] = None
        relative_xyz = False  # G90 (absolute) is the power-on default
        relative_e = False    # M82 (absolute extruder) likewise

        segments: List[_MoveSegment] = []
        # Step events for the slow state (targets change instantaneously,
        # the thermal filter smooths them at sampling time).
        hotend_events: List[Tuple[float, float]] = [(0.0, hotend_target)]
        bed_events: List[Tuple[float, float]] = [(0.0, bed_target)]
        fan_events: List[Tuple[float, float]] = [(0.0, fan)]
        layer_changes: List[float] = []

        # Moves are queued and planned in chains so the optional look-ahead
        # planner can join them at nonzero junction speeds; the stop-to-stop
        # planner simply plans each queued move independently.
        pending: List[dict] = []

        def flush_moves() -> None:
            nonlocal t
            if not pending:
                return
            movers = [p for p in pending if p["path_length"] > 0]
            if machine.lookahead and len(movers) > 1 and movers == pending:
                from .lookahead import plan_chain

                profiles = plan_chain(
                    [p["direction"] for p in pending],
                    [p["path_length"] for p in pending],
                    [p["feedrate"] for p in pending],
                    machine.acceleration,
                    machine.junction_deviation,
                )
            else:
                profiles = [
                    plan_move(
                        p["path_length"], p["feedrate"], machine.acceleration
                    )
                    for p in pending
                ]
            for p, profile in zip(pending, profiles):
                if p["starts_layer"]:
                    layer_changes.append(t)
                duration = noise.perturb_duration(profile.duration)
                segments.append(
                    _MoveSegment(
                        t_start=t,
                        duration=duration,
                        profile=profile,
                        start_xyz=p["start"],
                        direction=p["direction"],
                        e_start=p["e_start"],
                        e_delta=p["e_delta"],
                        command_index=p["index"],
                        layer_index=p["layer"],
                    )
                )
                t += duration
                if not machine.lookahead:
                    t += noise.sample_gap()
            if machine.lookahead:
                # Joined moves flow through the planner buffer; the random
                # queueing gap appears once per chain, not per move.
                t += noise.sample_gap()
            pending.clear()

        for index, raw_command in enumerate(program):
            command = (
                self.transformer(raw_command) if self.transformer else raw_command
            )
            code = command.code

            if command.is_move:
                f = command.get("F")
                if f is not None:
                    feedrate = min(f / 60.0, machine.max_feedrate)
                target = pos.copy()
                for axis, k in enumerate("XYZ"):
                    value = command.get(k)
                    if value is not None:
                        target[axis] = pos[axis] + value if relative_xyz else value
                e_value = command.get("E")
                if e_value is None:
                    e_target = e_pos
                elif relative_e:
                    e_target = e_pos + e_value
                else:
                    e_target = e_value

                starts_layer = False
                z = command.get("Z")
                if z is not None and (current_z is None or z > current_z):
                    if current_z is not None:
                        layer += 1
                        starts_layer = True
                    current_z = z

                delta = target - pos
                distance = float(np.linalg.norm(delta))
                e_delta = float(e_target - e_pos)
                if distance > 0:
                    pending.append(
                        {
                            "direction": delta / distance,
                            "path_length": distance,
                            "feedrate": feedrate,
                            "start": pos.copy(),
                            "e_start": e_pos,
                            "e_delta": e_delta,
                            "index": index,
                            "layer": layer,
                            "starts_layer": starts_layer,
                        }
                    )
                elif abs(e_delta) > 0:
                    # Extruder-only move (retraction): the head stops, so it
                    # breaks any look-ahead chain.
                    flush_moves()
                    pending.append(
                        {
                            "direction": np.zeros(3),
                            "path_length": abs(e_delta),
                            "feedrate": feedrate,
                            "start": pos.copy(),
                            "e_start": e_pos,
                            "e_delta": e_delta,
                            "index": index,
                            "layer": layer,
                            "starts_layer": starts_layer,
                        }
                    )
                    flush_moves()
                elif starts_layer:
                    # A zero-length layer marker: record it in execution
                    # order by flushing what came before it first.
                    flush_moves()
                    layer_changes.append(t)
                pos = target
                e_pos = float(e_target)

            elif code == "G28":  # home: move to origin at a fixed rate
                flush_moves()
                distance = float(np.linalg.norm(pos))
                if distance > 0:
                    profile = plan_move(distance, 50.0, machine.acceleration)
                    duration = noise.perturb_duration(profile.duration)
                    segments.append(
                        _MoveSegment(
                            t_start=t,
                            duration=duration,
                            profile=profile,
                            start_xyz=pos.copy(),
                            direction=-pos / distance,
                            e_start=e_pos,
                            e_delta=0.0,
                            command_index=index,
                            layer_index=layer,
                        )
                    )
                    t += duration
                pos = np.zeros(3)
                current_z = None

            elif code == "G90":  # absolute positioning (XYZ and E)
                relative_xyz = False
                relative_e = False
            elif code == "G91":  # relative positioning (XYZ and E)
                relative_xyz = True
                relative_e = True
            elif code == "M82":  # absolute extruder
                relative_e = False
            elif code == "M83":  # relative extruder
                relative_e = True

            elif code == "G92":  # reset logical positions
                flush_moves()
                for axis, k in enumerate("XYZ"):
                    value = command.get(k)
                    if value is not None:
                        pos[axis] = value
                e = command.get("E")
                if e is not None:
                    e_pos = float(e)

            elif code == "G4":  # dwell: P (ms) or S (s)
                flush_moves()
                t += (command.get("P", 0.0) or 0.0) / 1000.0
                t += command.get("S", 0.0) or 0.0

            elif code in ("M104", "M109"):
                flush_moves()
                hotend_target = command.get("S", hotend_target)
                hotend_events.append((t, hotend_target))
                if code == "M109":
                    t += self._wait_time(machine.hotend_tau)
            elif code in ("M140", "M190"):
                flush_moves()
                bed_target = command.get("S", bed_target)
                bed_events.append((t, bed_target))
                if code == "M190":
                    t += self._wait_time(machine.bed_tau)
            elif code == "M106":
                flush_moves()
                fan = float(np.clip(command.get("S", 255.0) / 255.0, 0.0, 1.0))
                fan_events.append((t, fan))
            elif code == "M107":
                flush_moves()
                fan = 0.0
                fan_events.append((t, fan))
            # Unknown codes are ignored, as real firmwares do.

        flush_moves()

        events = {
            "hotend": hotend_events,
            "bed": bed_events,
            "fan": fan_events,
            "layer_changes": layer_changes,
            "total_time": t,
        }
        return segments, events

    def _wait_time(self, tau: float) -> float:
        """Time M109/M190 blocks, capped by the machine's wait limit."""
        # First-order system reaches ~95% of a step in 3 tau.
        return min(3.0 * tau, self.machine.max_temp_wait)

    # ------------------------------------------------------------------
    # Sampling: turn segments + events into uniform arrays.
    # ------------------------------------------------------------------
    def _sample(self, segments: List[_MoveSegment], events: dict) -> MachineTrace:
        machine = self.machine
        fs = machine.sim_rate
        total = events["total_time"]
        n = max(2, int(np.ceil(total * fs)) + 1)
        times = np.arange(n) / fs

        position = np.zeros((n, 3))
        velocity = np.zeros((n, 3))
        acceleration = np.zeros((n, 3))
        extrusion = np.zeros(n)
        command_index = np.zeros(n, dtype=np.intp)
        layer_index = np.zeros(n, dtype=np.intp)

        # Hold the last position between moves.
        last_pos = np.zeros(3)
        cursor = 0
        for seg in segments:
            i0 = int(np.ceil(seg.t_start * fs))
            i1 = int(np.ceil((seg.t_start + seg.duration) * fs))
            i0, i1 = min(i0, n), min(i1, n)
            # idle gap before this segment holds the previous position
            position[cursor:i0] = last_pos
            if cursor > 0:
                command_index[cursor:i0] = command_index[cursor - 1]
                layer_index[cursor:i0] = layer_index[cursor - 1]

            if i1 > i0:
                local_t = times[i0:i1] - seg.t_start
                # Jitter stretches real time; the profile is defined over the
                # nominal duration, so map through the stretch factor.
                stretch = (
                    seg.profile.duration / seg.duration
                    if seg.duration > 0
                    else 1.0
                )
                tau = local_t * stretch
                s = seg.profile.position(tau)
                v = seg.profile.velocity(tau) * stretch
                a = seg.profile.acceleration(tau) * stretch**2
                position[i0:i1] = seg.start_xyz + np.outer(s, seg.direction)
                velocity[i0:i1] = np.outer(v, seg.direction)
                acceleration[i0:i1] = np.outer(a, seg.direction)
                if seg.profile.distance > 0:
                    frac = seg.e_delta / seg.profile.distance
                    extrusion[i0:i1] = v * frac
                command_index[i0:i1] = seg.command_index
                layer_index[i0:i1] = seg.layer_index
            end = seg.start_xyz + seg.direction * seg.profile.distance
            last_pos = end
            cursor = max(cursor, i1)
        position[cursor:] = last_pos
        if cursor > 0 and cursor < n:
            command_index[cursor:] = command_index[cursor - 1]
            layer_index[cursor:] = layer_index[cursor - 1]

        hotend = self._thermal_track(times, events["hotend"], machine.hotend_tau)
        bed = self._thermal_track(times, events["bed"], machine.bed_tau)
        fan = self._step_track(times, events["fan"])

        joint_pos = machine.kinematics.joint_positions(position)
        joint_vel = np.gradient(joint_pos, 1.0 / fs, axis=0)

        return MachineTrace(
            sim_rate=fs,
            times=times,
            position=position,
            velocity=velocity,
            acceleration=acceleration,
            joint_position=joint_pos,
            joint_velocity=joint_vel,
            extrusion_rate=extrusion,
            hotend_temp=hotend,
            bed_temp=bed,
            fan=fan,
            command_index=command_index,
            layer_index=layer_index,
            layer_change_times=list(events["layer_changes"]),
        )

    def _thermal_track(
        self, times: np.ndarray, events: List[Tuple[float, float]], tau: float
    ) -> np.ndarray:
        """First-order response to a piecewise-constant target."""
        target = self._step_track(times, events)
        out = np.empty_like(target)
        out[0] = self.machine.ambient_temp
        alpha = (1.0 / self.machine.sim_rate) / max(tau, 1e-6)
        alpha = min(alpha, 1.0)
        for i in range(1, out.size):
            out[i] = out[i - 1] + alpha * (target[i] - out[i - 1])
        return out

    @staticmethod
    def _step_track(
        times: np.ndarray, events: List[Tuple[float, float]]
    ) -> np.ndarray:
        """Piecewise-constant value track from (time, value) step events."""
        out = np.zeros_like(times)
        if not events:
            return out
        events = sorted(events)
        values = np.array([v for _, v in events])
        starts = np.array([t for t, _ in events])
        idx = np.searchsorted(starts, times, side="right") - 1
        idx = np.clip(idx, 0, len(events) - 1)
        return values[idx]


def simulate_print(
    program: GcodeProgram,
    machine: MachineConfig,
    time_noise: TimeNoiseModel = NO_TIME_NOISE,
    seed: Optional[int] = None,
    transformer: Optional[CommandTransformer] = None,
) -> MachineTrace:
    """One-call convenience wrapper around :class:`Firmware`."""
    rng = np.random.default_rng(seed)
    return Firmware(machine, time_noise, transformer).run(program, rng)
