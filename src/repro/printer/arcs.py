"""G2/G3 arc interpolation.

Slicers with "arc welder" post-processing emit circular moves: ``G2``
(clockwise) and ``G3`` (counter-clockwise) with the arc centre given as an
``I``/``J`` offset from the current position (or a radius ``R``).  Real
firmwares flatten arcs into short line segments internally; we do the same
as a preprocessing pass, so the planner, the time-noise model, and every
sensor see arcs exactly as they see any other toolpath.

Extrusion ``E`` and the feedrate are carried through; ``E`` is distributed
over the segments in proportion to arc length.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .gcode import GcodeCommand, GcodeProgram

__all__ = ["segment_arcs", "arc_points"]

_FULL_CIRCLE_EPS = 1e-9


def arc_points(
    start: np.ndarray,
    end: np.ndarray,
    centre: np.ndarray,
    clockwise: bool,
    max_segment: float = 0.5,
) -> np.ndarray:
    """Points along the arc from ``start`` to ``end`` about ``centre``.

    Returns the interior + final points (the start point is excluded).  A
    coincident start/end is treated as a full circle, as firmwares do.
    """
    if max_segment <= 0:
        raise ValueError(f"max_segment must be positive, got {max_segment}")
    v0 = start - centre
    v1 = end - centre
    r0, r1 = np.linalg.norm(v0), np.linalg.norm(v1)
    if r0 < _FULL_CIRCLE_EPS:
        raise ValueError("arc start coincides with its centre")

    a0 = np.arctan2(v0[1], v0[0])
    a1 = np.arctan2(v1[1], v1[0])
    sweep = a1 - a0
    if clockwise:
        while sweep >= -_FULL_CIRCLE_EPS:
            sweep -= 2.0 * np.pi
    else:
        while sweep <= _FULL_CIRCLE_EPS:
            sweep += 2.0 * np.pi

    arc_len = abs(sweep) * max(r0, r1)
    n_segments = max(2, int(np.ceil(arc_len / max_segment)))
    ts = np.linspace(0.0, 1.0, n_segments + 1)[1:]
    angles = a0 + sweep * ts
    # Blend the radius linearly so slightly inconsistent I/J still closes
    # onto the commanded endpoint (firmware behaviour).
    radii = r0 + (r1 - r0) * ts
    points = centre + np.column_stack(
        [radii * np.cos(angles), radii * np.sin(angles)]
    )
    points[-1] = end  # land exactly on the commanded endpoint
    return points


def _centre_from_radius(
    start: np.ndarray, end: np.ndarray, radius: float, clockwise: bool
) -> np.ndarray:
    """Arc centre from the R form (choose the minor arc as firmwares do)."""
    chord = end - start
    d = np.linalg.norm(chord)
    if d < _FULL_CIRCLE_EPS:
        raise ValueError("R-form arcs cannot be full circles")
    if abs(radius) < d / 2.0 - 1e-9:
        raise ValueError(f"radius {radius} too small for chord {d}")
    mid = (start + end) / 2.0
    h = np.sqrt(max(radius**2 - (d / 2.0) ** 2, 0.0))
    normal = np.array([-chord[1], chord[0]]) / d
    # Sign convention: positive R picks the minor arc.
    sign = -1.0 if clockwise else 1.0
    if radius < 0:
        sign = -sign
    return mid + sign * h * normal


def segment_arcs(
    program: GcodeProgram, max_segment: float = 0.5
) -> GcodeProgram:
    """Replace every G2/G3 with an equivalent chain of G1 moves.

    Programs without arcs are returned unchanged (same object), so the
    preprocessing is free in the common case.
    """
    if not any(c.code in ("G2", "G3") for c in program):
        return program

    commands: List[GcodeCommand] = []
    pos = np.zeros(2)
    e_pos = 0.0
    for command in program:
        if command.code in ("G2", "G3"):
            clockwise = command.code == "G2"
            end = np.array(
                [command.get("X", pos[0]), command.get("Y", pos[1])]
            )
            if command.get("R") is not None:
                centre = _centre_from_radius(
                    pos, end, command.get("R"), clockwise
                )
            else:
                centre = pos + np.array(
                    [command.get("I", 0.0), command.get("J", 0.0)]
                )
            points = arc_points(pos, end, centre, clockwise, max_segment)

            e_target = command.get("E")
            lengths = np.linalg.norm(
                np.diff(np.vstack([pos, points]), axis=0), axis=1
            )
            total = float(lengths.sum()) or 1.0
            cumulative = np.cumsum(lengths) / total

            f = command.get("F")
            for k, point in enumerate(points):
                params = {"X": round(float(point[0]), 5),
                          "Y": round(float(point[1]), 5)}
                if e_target is not None:
                    e_here = e_pos + (e_target - e_pos) * cumulative[k]
                    params["E"] = round(float(e_here), 6)
                if f is not None and k == 0:
                    params["F"] = f
                z = command.get("Z")
                if z is not None and k == len(points) - 1:
                    params["Z"] = z
                commands.append(
                    GcodeCommand("G1", params, comment="arc" if k == 0 else None)
                )
            pos = end
            if e_target is not None:
                e_pos = float(e_target)
            continue

        if command.is_move:
            pos = np.array(
                [command.get("X", pos[0]), command.get("Y", pos[1])]
            )
            if command.get("E") is not None:
                e_pos = float(command.get("E"))
        elif command.code == "G92" and command.get("E") is not None:
            e_pos = float(command.get("E"))
        elif command.code == "G28":
            pos = np.zeros(2)
        commands.append(command)
    return GcodeProgram(commands)
