"""Look-ahead motion planning with junction velocities.

The basic planner (:mod:`repro.printer.motion`) brings the head to a full
stop between moves — simple, and it produces the vibration bursts that make
the ACC channel informative.  Real firmwares (Marlin, and the Ultimaker's)
*look ahead*: consecutive nearly-collinear moves are joined at a nonzero
junction velocity, so long perimeter polylines glide instead of stuttering.

This module implements the classic junction-deviation planner:

1. per junction, an allowed speed from the angle between the moves
   (full speed for collinear, zero for a reversal);
2. a forward pass limiting each entry speed by what acceleration can reach;
3. a backward pass limiting each exit speed so the chain can always stop;
4. per-move velocity profiles generalized to nonzero entry/exit speeds.

Enable it per machine with ``MachineConfig(..., lookahead=True)`` — the
evaluation defaults keep the stop-to-stop planner so published results stay
stable; `benchmarks/bench_ablations.py` quantifies the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["GeneralProfile", "plan_chain", "junction_speed"]


@dataclass(frozen=True)
class GeneralProfile:
    """Trapezoidal profile with arbitrary entry/exit speeds.

    Phases: accelerate from ``v_start`` to ``v_peak``, cruise, decelerate to
    ``v_end``.  Degenerates gracefully to triangular or single-ramp shapes.
    """

    distance: float
    v_start: float
    v_peak: float
    v_end: float
    accel: float
    t_accel: float
    t_cruise: float
    t_decel: float

    @property
    def duration(self) -> float:
        return self.t_accel + self.t_cruise + self.t_decel

    def position(self, t: np.ndarray) -> np.ndarray:
        t = np.clip(np.asarray(t, dtype=np.float64), 0.0, self.duration)
        d1 = self.v_start * self.t_accel + 0.5 * self.accel * self.t_accel**2
        d2 = d1 + self.v_peak * self.t_cruise

        out = np.empty_like(t)
        in_acc = t < self.t_accel
        in_cruise = (~in_acc) & (t < self.t_accel + self.t_cruise)
        in_dec = ~(in_acc | in_cruise)

        ta = t[in_acc]
        out[in_acc] = self.v_start * ta + 0.5 * self.accel * ta**2
        out[in_cruise] = d1 + self.v_peak * (t[in_cruise] - self.t_accel)
        td = t[in_dec] - self.t_accel - self.t_cruise
        out[in_dec] = d2 + self.v_peak * td - 0.5 * self.accel * td**2
        return np.minimum(out, self.distance)

    def velocity(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        out = np.zeros_like(t)
        in_move = (t >= 0.0) & (t <= self.duration)
        tm = t[in_move]
        v = np.empty_like(tm)
        acc_phase = tm < self.t_accel
        cruise_phase = (~acc_phase) & (tm < self.t_accel + self.t_cruise)
        dec_phase = ~(acc_phase | cruise_phase)
        v[acc_phase] = self.v_start + self.accel * tm[acc_phase]
        v[cruise_phase] = self.v_peak
        td = tm[dec_phase] - self.t_accel - self.t_cruise
        v[dec_phase] = np.maximum(self.v_peak - self.accel * td, 0.0)
        out[in_move] = v
        return out

    def acceleration(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=np.float64)
        out = np.zeros_like(t)
        out[(t >= 0.0) & (t < self.t_accel)] = self.accel
        lo = self.t_accel + self.t_cruise
        out[(t >= lo) & (t <= self.duration)] = -self.accel
        return out


def junction_speed(
    dir_in: np.ndarray,
    dir_out: np.ndarray,
    feedrate: float,
    accel: float,
    junction_deviation: float = 0.05,
) -> float:
    """Allowed speed through the corner between two unit directions.

    The Marlin junction-deviation model: the corner is approximated by an
    arc of radius ``r = delta * sin(theta/2) / (1 - sin(theta/2))`` and the
    centripetal limit ``v = sqrt(a * r)`` applies; collinear junctions pass
    at full feedrate, reversals force a stop.
    """
    cos_theta = float(np.clip(-np.dot(dir_in, dir_out), -1.0, 1.0))
    # cos_theta is the cosine of the *turn* angle's supplement: -1 means
    # collinear continuation, +1 a full reversal.
    if cos_theta <= -0.9999:
        return feedrate
    if cos_theta >= 0.9999:
        return 0.0
    sin_half = np.sqrt(0.5 * (1.0 - cos_theta))
    radius = junction_deviation * sin_half / max(1.0 - sin_half, 1e-9)
    return float(min(feedrate, np.sqrt(max(accel * radius, 0.0))))


def _profile_for(
    distance: float,
    v_start: float,
    v_end: float,
    feedrate: float,
    accel: float,
) -> GeneralProfile:
    """Build one profile with fixed, feasible entry/exit speeds."""
    # Peak speed reachable given the distance and both boundary speeds.
    v_possible = np.sqrt(
        (2.0 * accel * distance + v_start**2 + v_end**2) / 2.0
    )
    v_peak = float(min(feedrate, v_possible))
    v_peak = max(v_peak, v_start, v_end)

    t_accel = (v_peak - v_start) / accel
    t_decel = (v_peak - v_end) / accel
    d_accel = (v_peak**2 - v_start**2) / (2.0 * accel)
    d_decel = (v_peak**2 - v_end**2) / (2.0 * accel)
    d_cruise = max(distance - d_accel - d_decel, 0.0)
    t_cruise = d_cruise / v_peak if v_peak > 0 else 0.0
    return GeneralProfile(
        distance=distance,
        v_start=v_start,
        v_peak=v_peak,
        v_end=v_end,
        accel=accel,
        t_accel=t_accel,
        t_cruise=t_cruise,
        t_decel=t_decel,
    )


def plan_chain(
    directions: Sequence[np.ndarray],
    distances: Sequence[float],
    feedrates: Sequence[float],
    accel: float,
    junction_deviation: float = 0.05,
) -> List[GeneralProfile]:
    """Plan a chain of moves with junction look-ahead.

    ``directions`` are unit vectors, ``distances`` mm, ``feedrates`` mm/s;
    the chain starts and ends at rest.
    """
    n = len(distances)
    if not (len(directions) == len(feedrates) == n):
        raise ValueError("directions, distances, feedrates must align")
    if n == 0:
        return []
    if accel <= 0:
        raise ValueError(f"accel must be positive, got {accel}")
    for d in distances:
        if d <= 0:
            raise ValueError("all distances must be positive")

    # Junction limits between consecutive moves.
    v_junction = np.zeros(n + 1)  # v[0] = start at rest, v[n] = end at rest
    for k in range(1, n):
        v_junction[k] = junction_speed(
            np.asarray(directions[k - 1]),
            np.asarray(directions[k]),
            min(feedrates[k - 1], feedrates[k]),
            accel,
            junction_deviation,
        )

    # Forward pass: entry speed limited by what accel can build up.
    for k in range(1, n + 1):
        reachable = np.sqrt(
            v_junction[k - 1] ** 2 + 2.0 * accel * distances[k - 1]
        )
        v_junction[k] = min(v_junction[k], reachable)
    # Backward pass: exit speed limited by the ability to slow down later.
    for k in range(n - 1, -1, -1):
        stoppable = np.sqrt(v_junction[k + 1] ** 2 + 2.0 * accel * distances[k])
        v_junction[k] = min(v_junction[k], stoppable)

    return [
        _profile_for(
            distances[k],
            float(v_junction[k]),
            float(v_junction[k + 1]),
            feedrates[k],
            accel,
        )
        for k in range(n)
    ]
