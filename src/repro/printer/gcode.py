"""G-code parsing, representation, and serialization.

G-code is the programming language of FDM printers (paper Section II-A).
Instructions give target coordinates and feedrates but *not* timing — the
firmware chooses accelerations and may insert gaps, which is exactly where
time noise comes from.  This module handles the dialect our slicer emits and
our firmware executes: linear moves (G0/G1), homing (G28), position resets
(G92), unit/positioning modes (G20/G21/G90/G91), temperatures (M104/M109/
M140/M190), and fan control (M106/M107).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["GcodeCommand", "GcodeProgram", "parse_gcode", "parse_line"]

# Parameters whose values are coordinates affected by G90/G91 positioning.
_AXIS_PARAMS = ("X", "Y", "Z", "E")


@dataclass(frozen=True)
class GcodeCommand:
    """A single G-code instruction.

    ``code`` is the normalized opcode (e.g. ``"G1"``); ``params`` maps
    single-letter parameter names to floats; ``comment`` keeps any trailing
    comment so attack transformers can annotate their edits.
    """

    code: str
    params: Dict[str, float] = field(default_factory=dict)
    comment: Optional[str] = None

    def get(self, key: str, default: Optional[float] = None) -> Optional[float]:
        """Look up a parameter value."""
        return self.params.get(key, default)

    @property
    def is_move(self) -> bool:
        """Whether this is a linear move (G0 or G1)."""
        return self.code in ("G0", "G1")

    def with_params(self, **updates: float) -> "GcodeCommand":
        """Return a copy with some parameters replaced (attack helper)."""
        params = dict(self.params)
        params.update(updates)
        return GcodeCommand(self.code, params, self.comment)

    def to_line(self) -> str:
        """Serialize back to a G-code source line."""
        parts = [self.code]
        for key, value in self.params.items():
            if value == int(value):
                parts.append(f"{key}{int(value)}")
            else:
                parts.append(f"{key}{value:.5f}".rstrip("0").rstrip("."))
        line = " ".join(parts)
        if self.comment:
            line += f" ;{self.comment}"
        return line


def parse_line(line: str) -> Optional[GcodeCommand]:
    """Parse one source line; returns ``None`` for blanks and pure comments."""
    comment = None
    if ";" in line:
        line, comment = line.split(";", 1)
        comment = comment.strip() or None
    line = line.strip()
    if not line:
        return None

    tokens = line.split()
    head = tokens[0].upper()
    if not head or head[0] not in "GMT":
        raise ValueError(f"unrecognized G-code line: {line!r}")
    # Normalize e.g. "G01" -> "G1".
    try:
        number = int(float(head[1:]))
    except ValueError:
        raise ValueError(f"bad opcode in G-code line: {line!r}") from None
    code = f"{head[0]}{number}"

    params: Dict[str, float] = {}
    for token in tokens[1:]:
        key = token[0].upper()
        try:
            params[key] = float(token[1:])
        except (ValueError, IndexError):
            raise ValueError(f"bad parameter {token!r} in line {line!r}") from None
    return GcodeCommand(code, params, comment)


def parse_gcode(source: Iterable[str]) -> "GcodeProgram":
    """Parse an iterable of source lines into a :class:`GcodeProgram`."""
    commands = []
    for raw in source:
        command = parse_line(raw)
        if command is not None:
            commands.append(command)
    return GcodeProgram(commands)


class GcodeProgram:
    """An ordered list of G-code commands with convenience accessors."""

    def __init__(self, commands: Iterable[GcodeCommand]) -> None:
        self.commands: List[GcodeCommand] = list(commands)

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self) -> Iterator[GcodeCommand]:
        return iter(self.commands)

    def __getitem__(self, index):
        return self.commands[index]

    def moves(self) -> List[GcodeCommand]:
        """All linear-move commands, in order."""
        return [c for c in self.commands if c.is_move]

    def layer_starts(self) -> List[int]:
        """Indexes of commands that begin a new layer (Z-only or Z+move).

        A command starts a layer when it is a move that raises ``Z``.  Used
        by the layer-synchronized baseline IDSs (Gao, Gatlin).
        """
        starts = []
        current_z: Optional[float] = None
        for i, c in enumerate(self.commands):
            if not c.is_move:
                continue
            z = c.get("Z")
            if z is None:
                continue
            if current_z is None or z > current_z:
                starts.append(i)
            current_z = z
        return starts

    def to_text(self) -> str:
        """Serialize the whole program."""
        return "\n".join(c.to_line() for c in self.commands) + "\n"

    @staticmethod
    def from_text(text: str) -> "GcodeProgram":
        return parse_gcode(text.splitlines())

    def copy(self) -> "GcodeProgram":
        return GcodeProgram(list(self.commands))
