"""Printer kinematics: tool position -> actuator (joint) coordinates.

The side channels we simulate are driven by the *actuators*, not the tool:
an accelerometer on the printhead feels Cartesian acceleration, but motor
noise (audio, magnetic, power) follows the joint velocities.  A Cartesian
machine (Ultimaker 3) has a trivial mapping; a delta machine (Rostock Max
V3) maps the same toolpath through the three-tower inverse kinematics, which
is why the same G-code "sounds" completely different on the two printers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["Kinematics", "CartesianKinematics", "DeltaKinematics"]


@runtime_checkable
class Kinematics(Protocol):
    """Maps tool coordinates to joint coordinates."""

    n_joints: int

    def joint_positions(self, xyz: np.ndarray) -> np.ndarray:
        """Joint coordinates for tool positions ``xyz`` of shape (n, 3)."""
        ...


@dataclass(frozen=True)
class CartesianKinematics:
    """Identity mapping: joints are the X, Y, Z axes themselves."""

    n_joints: int = 3

    def joint_positions(self, xyz: np.ndarray) -> np.ndarray:
        xyz = np.atleast_2d(np.asarray(xyz, dtype=np.float64))
        if xyz.shape[1] != 3:
            raise ValueError(f"expected (n, 3) tool positions, got {xyz.shape}")
        return xyz.copy()


@dataclass(frozen=True)
class DeltaKinematics:
    """Linear-rail delta (Rostock-style) inverse kinematics.

    Three towers stand on a circle of radius ``tower_radius`` at 120-degree
    spacing; each carriage connects to the effector through an arm of length
    ``arm_length``.  The carriage height for tower ``k`` at tool position
    ``(x, y, z)`` is::

        h_k = z + sqrt(L^2 - (x_k - x)^2 - (y_k - y)^2)

    where ``(x_k, y_k)`` is the tower's base position (effector offsets are
    folded into ``tower_radius``).
    """

    arm_length: float = 291.06
    tower_radius: float = 200.0
    n_joints: int = 3

    def __post_init__(self) -> None:
        if self.arm_length <= 0:
            raise ValueError(f"arm_length must be positive, got {self.arm_length}")
        if self.tower_radius <= 0:
            raise ValueError(
                f"tower_radius must be positive, got {self.tower_radius}"
            )
        if self.arm_length <= self.tower_radius:
            raise ValueError(
                "arm_length must exceed tower_radius or the centre is "
                "unreachable"
            )

    def tower_xy(self) -> np.ndarray:
        """Base (x, y) of the three towers, shape (3, 2)."""
        angles = np.deg2rad([90.0, 210.0, 330.0])
        return self.tower_radius * np.column_stack(
            [np.cos(angles), np.sin(angles)]
        )

    def joint_positions(self, xyz: np.ndarray) -> np.ndarray:
        """Carriage heights, shape (n, 3).  Raises if a point is unreachable."""
        xyz = np.atleast_2d(np.asarray(xyz, dtype=np.float64))
        if xyz.shape[1] != 3:
            raise ValueError(f"expected (n, 3) tool positions, got {xyz.shape}")
        towers = self.tower_xy()  # (3, 2)
        dx = towers[:, 0][np.newaxis, :] - xyz[:, 0][:, np.newaxis]  # (n, 3)
        dy = towers[:, 1][np.newaxis, :] - xyz[:, 1][:, np.newaxis]
        under = self.arm_length**2 - dx**2 - dy**2
        if np.any(under <= 0):
            raise ValueError("tool position outside the delta's reachable volume")
        return xyz[:, 2][:, np.newaxis] + np.sqrt(under)
