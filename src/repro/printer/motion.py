"""Trapezoidal motion planning.

An FDM controller executes each linear move with a trapezoidal velocity
profile: accelerate at the machine's acceleration limit, cruise at the
requested feedrate, decelerate to a stop (we plan moves independently with
zero junction velocity — the conservative strategy of many desktop
firmwares, and the source of the per-move vibration bursts that make the
acceleration/audio side channels so informative).

Short moves that cannot reach the requested feedrate become triangular
profiles.  The planner produces closed-form position/velocity/acceleration
as functions of time, which the firmware samples onto its simulation grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TrapezoidalProfile", "plan_move"]


@dataclass(frozen=True)
class TrapezoidalProfile:
    """A 1-D trapezoidal (or triangular) velocity profile along a path.

    ``distance`` is the total path length (mm), ``v_peak`` the attained peak
    speed (mm/s), ``accel`` the acceleration magnitude (mm/s^2); ``t_accel``,
    ``t_cruise``, ``t_decel`` the phase durations (s).
    """

    distance: float
    v_peak: float
    accel: float
    t_accel: float
    t_cruise: float
    t_decel: float

    @property
    def duration(self) -> float:
        """Total move duration in seconds."""
        return self.t_accel + self.t_cruise + self.t_decel

    def position(self, t: np.ndarray) -> np.ndarray:
        """Distance travelled along the path at times ``t`` (clamped)."""
        t = np.clip(np.asarray(t, dtype=np.float64), 0.0, self.duration)
        d_accel = 0.5 * self.accel * self.t_accel**2
        d_cruise = self.v_peak * self.t_cruise

        out = np.empty_like(t)
        in_accel = t < self.t_accel
        in_cruise = (~in_accel) & (t < self.t_accel + self.t_cruise)
        in_decel = ~(in_accel | in_cruise)

        out[in_accel] = 0.5 * self.accel * t[in_accel] ** 2
        out[in_cruise] = d_accel + self.v_peak * (t[in_cruise] - self.t_accel)
        td = t[in_decel] - self.t_accel - self.t_cruise
        out[in_decel] = (
            d_accel + d_cruise + self.v_peak * td - 0.5 * self.accel * td**2
        )
        return np.minimum(out, self.distance)

    def velocity(self, t: np.ndarray) -> np.ndarray:
        """Speed along the path at times ``t`` (0 outside the move)."""
        t = np.asarray(t, dtype=np.float64)
        out = np.zeros_like(t)
        in_move = (t >= 0.0) & (t <= self.duration)
        tm = t[in_move]
        v = np.empty_like(tm)
        accel_phase = tm < self.t_accel
        cruise_phase = (~accel_phase) & (tm < self.t_accel + self.t_cruise)
        decel_phase = ~(accel_phase | cruise_phase)
        v[accel_phase] = self.accel * tm[accel_phase]
        v[cruise_phase] = self.v_peak
        td = tm[decel_phase] - self.t_accel - self.t_cruise
        v[decel_phase] = np.maximum(self.v_peak - self.accel * td, 0.0)
        out[in_move] = v
        return out

    def acceleration(self, t: np.ndarray) -> np.ndarray:
        """Signed acceleration along the path at times ``t``."""
        t = np.asarray(t, dtype=np.float64)
        out = np.zeros_like(t)
        out[(t >= 0.0) & (t < self.t_accel)] = self.accel
        lo = self.t_accel + self.t_cruise
        out[(t >= lo) & (t <= self.duration)] = -self.accel
        return out


def plan_move(distance: float, feedrate: float, accel: float) -> TrapezoidalProfile:
    """Plan a single move of ``distance`` mm at up to ``feedrate`` mm/s.

    Returns a degenerate zero-duration profile for zero-length moves.
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    if feedrate <= 0:
        raise ValueError(f"feedrate must be positive, got {feedrate}")
    if accel <= 0:
        raise ValueError(f"accel must be positive, got {accel}")
    if distance == 0.0:
        return TrapezoidalProfile(0.0, 0.0, accel, 0.0, 0.0, 0.0)

    # Distance needed to reach the feedrate and stop again.
    d_ramps = feedrate**2 / accel
    if distance >= d_ramps:
        v_peak = feedrate
        t_accel = feedrate / accel
        t_cruise = (distance - d_ramps) / feedrate
    else:
        # Triangular profile: peak speed limited by the move length.
        v_peak = float(np.sqrt(distance * accel))
        t_accel = v_peak / accel
        t_cruise = 0.0
    return TrapezoidalProfile(
        distance=distance,
        v_peak=v_peak,
        accel=accel,
        t_accel=t_accel,
        t_cruise=t_cruise,
        t_decel=t_accel,
    )
