"""Printer substrate: G-code, motion planning, kinematics, firmware."""

from .gcode import GcodeCommand, GcodeProgram, parse_gcode, parse_line
from .motion import TrapezoidalProfile, plan_move
from .kinematics import CartesianKinematics, DeltaKinematics, Kinematics
from .noise import NO_TIME_NOISE, TimeNoiseModel
from .machine import MachineConfig, ROSTOCK_MAX_V3, ULTIMAKER3
from .firmware import Firmware, MachineTrace, simulate_print
from .arcs import arc_points, segment_arcs
from .lookahead import GeneralProfile, junction_speed, plan_chain

__all__ = [
    "GcodeCommand",
    "GcodeProgram",
    "parse_gcode",
    "parse_line",
    "TrapezoidalProfile",
    "plan_move",
    "CartesianKinematics",
    "DeltaKinematics",
    "Kinematics",
    "NO_TIME_NOISE",
    "TimeNoiseModel",
    "MachineConfig",
    "ROSTOCK_MAX_V3",
    "ULTIMAKER3",
    "Firmware",
    "MachineTrace",
    "simulate_print",
    "arc_points",
    "segment_arcs",
    "GeneralProfile",
    "junction_speed",
    "plan_chain",
]
