"""The five malicious printing processes of Table I.

| Attack      | Manipulation                                  | Source |
|-------------|-----------------------------------------------|--------|
| Void        | an internal void is inserted                  | [25]   |
| InfillGrid  | infill pattern changed to grid                | [4]    |
| Speed0.95   | printing speed decreased by 5%                | [12]   |
| Layer0.3    | layer height changed to 0.3 mm                | [12]   |
| Scale0.95   | object shrunk by 5%                           | [25]   |

Void and Speed manipulate the existing G-code; InfillGrid, Layer and Scale
re-slice with sabotaged settings, as the paper did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..printer.gcode import GcodeCommand, GcodeProgram
from ..slicer.geometry import polygon_centroid
from .base import Attack, PrintJob, spans_from_indices

__all__ = [
    "VoidAttack",
    "InfillGridAttack",
    "SpeedAttack",
    "LayerHeightAttack",
    "ScaleAttack",
    "TABLE_I_ATTACKS",
]


def _reslice_tampered(job: PrintJob, config) -> PrintJob:
    """Re-slice with sabotaged settings; every instruction is tampered.

    A re-slicing attacker regenerates the whole program, so the ground
    truth for forensics is the full instruction range of the *new*
    program (there is no benign subset to localize against).
    """
    resliced = job.reslice(config)
    return resliced.with_tampered_spans(((0, len(resliced.program)),))


@dataclass
class VoidAttack(Attack):
    """Insert an internal void (Sturm et al. [25]).

    In the middle band of layers (``layer_band`` as fractions of the layer
    stack, always covering at least one layer), every extruding move whose
    path crosses a disk of ``radius`` mm around the part centroid is
    converted to a travel move at travel speed (a slicer crosses gaps
    without extruding, and fast): material is not deposited there, leaving a
    cavity invisible from outside.
    """

    radius: float = 8.0
    layer_band: Tuple[float, float] = (1.0 / 3.0, 2.0 / 3.0)

    name = "Void"

    @staticmethod
    def _segment_hits_disk(
        p0: np.ndarray, p1: np.ndarray, centre: np.ndarray, radius: float
    ) -> bool:
        """Whether the segment ``p0 -> p1`` comes within ``radius`` of centre."""
        d = p1 - p0
        length_sq = float(d @ d)
        if length_sq == 0.0:
            return bool(np.linalg.norm(p0 - centre) <= radius)
        t = float(np.clip((centre - p0) @ d / length_sq, 0.0, 1.0))
        nearest = p0 + t * d
        return bool(np.linalg.norm(nearest - centre) <= radius)

    def apply(self, job: PrintJob) -> PrintJob:
        centre = polygon_centroid(job.outline) + np.asarray(job.center)
        travel_f = job.config.travel_speed * 60.0

        # Determine which printed z-levels fall in the voided layer band.
        z_levels = sorted(
            {
                c.get("Z")
                for c in job.program
                if c.is_move and c.get("Z") is not None
            }
        )
        if not z_levels:
            return PrintJob(job.outline, job.config, job.program.copy(), job.center)
        n = len(z_levels)
        lo = min(int(np.floor(self.layer_band[0] * n)), n - 1)
        hi = max(int(np.ceil(self.layer_band[1] * n)), lo + 1)
        voided_z = set(z_levels[lo:hi])

        commands: List[GcodeCommand] = []
        tampered: List[int] = []
        current_z: Optional[float] = None
        position = np.zeros(2)
        e_prev = 0.0
        e_removed = 0.0  # E is absolute: skipped filament must be deducted
        for command in job.program:
            if command.is_move:
                z = command.get("Z")
                if z is not None:
                    current_z = z
                x, y = command.get("X"), command.get("Y")
                e = command.get("E")
                if x is not None and y is not None:
                    target = np.array([x, y])
                    if (
                        command.code == "G1"
                        and e is not None
                        and current_z in voided_z
                        and self._segment_hits_disk(
                            position, target, centre, self.radius
                        )
                    ):
                        e_removed += e - e_prev
                        e_prev = e
                        params = {
                            k: v for k, v in command.params.items() if k != "E"
                        }
                        params["F"] = travel_f
                        tampered.append(len(commands))
                        commands.append(
                            GcodeCommand("G0", params, comment="voided")
                        )
                        position = target
                        continue
                    position = target
                if e is not None:
                    e_prev = e
                    if e_removed:
                        command = command.with_params(E=e - e_removed)
            elif command.code == "G92" and command.get("E") is not None:
                e_prev = command.get("E")
                e_removed = 0.0
            commands.append(command)
        return PrintJob(
            job.outline,
            job.config,
            GcodeProgram(commands),
            job.center,
            tampered_spans=spans_from_indices(tampered),
        )


@dataclass
class InfillGridAttack(Attack):
    """Switch the infill pattern to grid (Bayens et al. [4])."""

    name = "InfillGrid"

    def apply(self, job: PrintJob) -> PrintJob:
        return _reslice_tampered(
            job, job.config.with_updates(infill_pattern="grid")
        )


@dataclass
class SpeedAttack(Attack):
    """Scale every feedrate (Gao et al. [12]; default -5%).

    Slower printing changes layer adhesion and cooling behaviour; it also
    stretches the whole timeline, which is precisely the signature the
    horizontal-displacement sub-modules catch.
    """

    factor: float = 0.95

    name = "Speed0.95"

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")

    def apply(self, job: PrintJob) -> PrintJob:
        commands = []
        tampered: List[int] = []
        for command in job.program:
            f = command.get("F")
            if command.is_move and f is not None:
                tampered.append(len(commands))
                commands.append(command.with_params(F=f * self.factor))
            else:
                commands.append(command)
        return PrintJob(
            job.outline,
            job.config,
            GcodeProgram(commands),
            job.center,
            tampered_spans=spans_from_indices(tampered),
        )


@dataclass
class LayerHeightAttack(Attack):
    """Re-slice with a different layer height (Gao et al. [12]; default 0.3)."""

    layer_height: float = 0.3

    name = "Layer0.3"

    def __post_init__(self) -> None:
        if self.layer_height <= 0:
            raise ValueError(
                f"layer_height must be positive, got {self.layer_height}"
            )

    def apply(self, job: PrintJob) -> PrintJob:
        return _reslice_tampered(
            job, job.config.with_updates(layer_height=self.layer_height)
        )


@dataclass
class ScaleAttack(Attack):
    """Re-slice with the object scaled (Sturm et al. [25]; default -5%)."""

    factor: float = 0.95

    name = "Scale0.95"

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")

    def apply(self, job: PrintJob) -> PrintJob:
        return _reslice_tampered(
            job, job.config.with_updates(scale=job.config.scale * self.factor)
        )


def TABLE_I_ATTACKS() -> List[Attack]:
    """Fresh instances of the five malicious processes of Table I."""
    return [
        VoidAttack(),
        InfillGridAttack(),
        SpeedAttack(),
        LayerHeightAttack(),
        ScaleAttack(),
    ]
