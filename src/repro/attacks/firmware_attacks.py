"""Firmware-level attacks.

The threat model also allows compromising the printer's firmware: the
controller receives *benign* G-code but executes something else.  We model
this with the :class:`~repro.printer.firmware.Firmware` command-transformer
hook — the attack is invisible to anything that inspects the G-code file,
which is exactly why side-channel IDSs are needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..printer.gcode import GcodeCommand

__all__ = ["FirmwareSpeedAttack", "FirmwareZShiftAttack"]


@dataclass(frozen=True)
class FirmwareSpeedAttack:
    """Firmware silently rescales every commanded feedrate.

    Usable directly as the ``transformer`` argument of
    :class:`~repro.printer.firmware.Firmware`.
    """

    factor: float = 0.95

    name = "FwSpeed"

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")

    def __call__(self, command: GcodeCommand) -> GcodeCommand:
        f = command.get("F")
        if command.is_move and f is not None:
            return command.with_params(F=f * self.factor)
        return command


@dataclass(frozen=True)
class FirmwareZShiftAttack:
    """Firmware offsets every Z target above a trigger height.

    Shifting upper layers compromises interlayer bonding in a band of the
    part while the dimensions of the finished object barely change.
    """

    z_trigger: float = 3.0
    z_offset: float = 0.1

    name = "FwZShift"

    def __call__(self, command: GcodeCommand) -> GcodeCommand:
        z = command.get("Z")
        if command.is_move and z is not None and z >= self.z_trigger:
            return command.with_params(Z=z + self.z_offset)
        return command
