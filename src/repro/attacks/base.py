"""Attack interface.

The threat model (paper Section IV) lets an attacker modify either the
G-code sent to the printer or the printer's firmware, aiming to weaken the
printed part while passing quality checks.  Every attack here transforms a
benign print definition into a malicious one; some rewrite the G-code
directly, others re-slice with sabotaged settings (which is how the paper's
authors produced their malicious processes, Table I).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Tuple

import numpy as np

from ..printer.gcode import GcodeProgram
from ..slicer.slicer import SlicerConfig, slice_model

__all__ = ["Attack", "PrintJob", "spans_from_indices"]


def spans_from_indices(indices: Iterable[int]) -> Tuple[Tuple[int, int], ...]:
    """Group instruction indices into half-open ``(start, stop)`` spans.

    Consecutive indices merge into one span; the result is sorted.  This is
    how attacks turn "I rewrote commands 17, 18, 19 and 42" into the
    ground-truth ``tampered_spans`` forensics compares alarms against.
    """
    ordered = sorted(set(int(i) for i in indices))
    spans: list = []
    for i in ordered:
        if spans and spans[-1][1] == i:
            spans[-1][1] = i + 1
        else:
            spans.append([i, i + 1])
    return tuple((lo, hi) for lo, hi in spans)


@dataclass(frozen=True)
class PrintJob:
    """Everything needed to (re-)produce a print: outline + settings + code.

    ``program`` is the G-code actually sent to the printer.  Keeping the
    outline, slicer config, and bed ``center`` around lets re-slicing
    attacks regenerate the program from sabotaged settings, exactly as an
    attacker with access to the design pipeline would.  ``center`` is
    ``(110, 110)`` for a Cartesian bed and ``(0, 0)`` for a delta.

    ``tampered_spans`` is ground truth for forensics: the half-open
    instruction-index ranges of ``program`` that an attack rewrote
    (empty for a benign job).  Attacks that re-slice replace the whole
    program, so their span is ``((0, len(program)),)``.
    """

    outline: np.ndarray
    config: SlicerConfig
    program: GcodeProgram
    center: tuple = (110.0, 110.0)
    tampered_spans: Tuple[Tuple[int, int], ...] = ()

    def with_tampered_spans(
        self, spans: Iterable[Tuple[int, int]]
    ) -> "PrintJob":
        """Copy of this job annotated with attack ground truth."""
        return replace(
            self, tampered_spans=tuple((int(a), int(b)) for a, b in spans)
        )

    @staticmethod
    def slice(
        outline: np.ndarray,
        config: Optional[SlicerConfig] = None,
        center: tuple = (110.0, 110.0),
    ) -> "PrintJob":
        """Slice a model into a benign print job."""
        config = config or SlicerConfig()
        return PrintJob(
            outline=np.asarray(outline, dtype=np.float64),
            config=config,
            program=slice_model(outline, config, center=center),
            center=tuple(center),
        )

    def reslice(self, config: SlicerConfig) -> "PrintJob":
        """Re-slice the same outline on the same bed with new settings."""
        return PrintJob(
            outline=self.outline,
            config=config,
            program=slice_model(self.outline, config, center=self.center),
            center=self.center,
        )


class Attack(abc.ABC):
    """A transformation from a benign print job to a malicious one."""

    #: Short identifier matching Table I (e.g. ``"Void"``).
    name: str = "Attack"

    @abc.abstractmethod
    def apply(self, job: PrintJob) -> PrintJob:
        """Return the sabotaged print job.  The input job is not mutated."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
