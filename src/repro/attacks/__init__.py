"""Attack suite: the five G-code attacks of Table I + firmware attacks."""

from .base import Attack, PrintJob, spans_from_indices
from .gcode_attacks import (
    InfillGridAttack,
    LayerHeightAttack,
    ScaleAttack,
    SpeedAttack,
    TABLE_I_ATTACKS,
    VoidAttack,
)
from .firmware_attacks import FirmwareSpeedAttack, FirmwareZShiftAttack
from .extension_attacks import FanAttack, InfillDensityAttack, TemperatureAttack

__all__ = [
    "Attack",
    "PrintJob",
    "spans_from_indices",
    "InfillGridAttack",
    "LayerHeightAttack",
    "ScaleAttack",
    "SpeedAttack",
    "TABLE_I_ATTACKS",
    "VoidAttack",
    "FirmwareSpeedAttack",
    "FirmwareZShiftAttack",
    "FanAttack",
    "InfillDensityAttack",
    "TemperatureAttack",
]
