"""Extension attacks beyond Table I.

Two further sabotage classes from the AM-security literature the paper
cites but does not evaluate.  Both weaken parts while keeping the toolpath
geometry identical — the hardest case for motion-based side channels, and a
test of how much the *process* channels (fan noise in AUD, heater duty in
PWR, TMP) actually contribute:

* **FanAttack** — disable or throttle the part-cooling fan.  Overhangs and
  bridges deform; the toolpath is untouched.
* **TemperatureAttack** — lower the hotend temperature.  Interlayer bonding
  weakens dramatically (Coogan & Kazmer [10] in the paper's references);
  the toolpath is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..printer.gcode import GcodeCommand, GcodeProgram
from .base import Attack, PrintJob, spans_from_indices

__all__ = ["FanAttack", "TemperatureAttack", "InfillDensityAttack"]


@dataclass
class FanAttack(Attack):
    """Scale (default: kill) every part-cooling-fan command."""

    factor: float = 0.0

    name = "FanOff"

    def __post_init__(self) -> None:
        if not 0.0 <= self.factor <= 1.0:
            raise ValueError(f"factor must be in [0, 1], got {self.factor}")

    def apply(self, job: PrintJob) -> PrintJob:
        commands: List[GcodeCommand] = []
        tampered: List[int] = []
        for command in job.program:
            if command.code == "M106":
                speed = command.get("S", 255.0) * self.factor
                tampered.append(len(commands))
                commands.append(command.with_params(S=speed))
            else:
                commands.append(command)
        return PrintJob(
            job.outline,
            job.config,
            GcodeProgram(commands),
            job.center,
            tampered_spans=spans_from_indices(tampered),
        )


@dataclass
class InfillDensityAttack(Attack):
    """Re-slice with sparser infill (default: half density).

    The classic strength sabotage: the outside of the part is untouched,
    the inside carries half the material.  Unlike FanOff/Temp-25 this DOES
    change the toolpath, so the motion side channels see it.
    """

    spacing_factor: float = 2.0

    name = "Infill/2"

    def __post_init__(self) -> None:
        if self.spacing_factor <= 0:
            raise ValueError(
                f"spacing_factor must be positive, got {self.spacing_factor}"
            )

    def apply(self, job: PrintJob) -> PrintJob:
        resliced = job.reslice(
            job.config.with_updates(
                infill_spacing=job.config.infill_spacing * self.spacing_factor
            )
        )
        return resliced.with_tampered_spans(((0, len(resliced.program)),))


@dataclass
class TemperatureAttack(Attack):
    """Offset every hotend temperature command (default: -25 degC)."""

    offset: float = -25.0

    name = "Temp-25"

    def apply(self, job: PrintJob) -> PrintJob:
        commands: List[GcodeCommand] = []
        tampered: List[int] = []
        for command in job.program:
            if command.code in ("M104", "M109"):
                target = command.get("S")
                if target is not None and target > 0:
                    tampered.append(len(commands))
                    commands.append(
                        command.with_params(S=max(target + self.offset, 0.0))
                    )
                    continue
            commands.append(command)
        return PrintJob(
            job.outline,
            job.config,
            GcodeProgram(commands),
            job.center,
            tampered_spans=spans_from_indices(tampered),
        )
