"""Content-addressed on-disk cache for simulated process runs.

Campaigns re-simulate the same (G-code, machine, noise model, DAQ, seed)
tuples over and over: every benchmark file regenerates its campaign, every
CLI invocation starts from scratch.  Simulation is deterministic, so a run
is fully described by its inputs — which makes it cacheable by content
address: a stable hash of everything that influences the simulated signals.

Key properties:

* **Content-addressed** — the key is a SHA-256 over a canonical JSON
  description of the G-code program text, the machine configuration
  (including kinematics), the time-noise model, the DAQ sensor configs, the
  acquired channels, and the seed.  Any change to any of those fields (for
  example a different ``rate_walk_std``) produces a different key, so stale
  hits are structurally impossible.
* **Versioned** — ``CACHE_VERSION`` is folded into every key.  Bump it when
  the simulator's semantics change so old payloads are ignored, not
  misread.
* **Plain ``.npz`` payloads** — each entry is one compressed archive written
  through :mod:`repro.io`, holding the per-channel signals plus the run's
  layer-change times and duration.  Labels are *not* stored: the same
  simulated physics is reusable under any label.

The cache location resolves, in order: an explicit ``directory`` argument,
the ``REPRO_CACHE_DIR`` environment variable, and (only if asked via
:func:`default_cache_dir`) a per-user default under ``~/.cache``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import zipfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "CACHE_VERSION",
    "CACHE_ENV_VAR",
    "RunCache",
    "RunPayload",
    "describe",
    "run_cache_key",
    "default_cache_dir",
    "resolve_cache",
]

#: Bump whenever the firmware/sensor simulation changes behaviour in a way
#: that invalidates previously cached signals.
CACHE_VERSION = 1

#: Environment variable naming the default cache directory.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Canonical descriptions and keys
# ---------------------------------------------------------------------------
def describe(obj) -> object:
    """Canonical JSON-able description of a configuration object.

    Dataclasses become ``{"__class__": name, **fields}`` (recursively), so
    two configurations hash equal iff they are the same type with the same
    field values.  Arrays are digested; unknown objects fall back to their
    class name plus ``__dict__``.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__class__": type(obj).__qualname__}
        for f in dataclasses.fields(obj):
            out[f.name] = describe(getattr(obj, f.name))
        return out
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(
                np.ascontiguousarray(obj).tobytes()
            ).hexdigest(),
            "shape": list(obj.shape),
            "dtype": str(obj.dtype),
        }
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, dict):
        return {str(k): describe(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [describe(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "__dict__"):
        return {
            "__class__": type(obj).__qualname__,
            **{k: describe(v) for k, v in sorted(vars(obj).items())},
        }
    return repr(obj)


def _describe_daq(daq) -> object:
    """Describe a :class:`~repro.sensors.daq.DataAcquisition` stably.

    Sensor identity is (class name, config fields); the sensor objects
    themselves may not be dataclasses.
    """
    out = {}
    for cid, sensor in sorted(daq.sensors.items()):
        out[cid] = {
            "__class__": type(sensor).__qualname__,
            "config": describe(getattr(sensor, "config", None)),
        }
    return out


def run_cache_key(
    program,
    machine,
    noise,
    daq,
    channels: Optional[Sequence[str]],
    seed: int,
) -> str:
    """Stable content address of one simulated process run.

    ``program`` is hashed through its G-code text serialization, so programs
    that serialize identically (regardless of how they were produced —
    sliced, parsed, or attacked) share cache entries.
    """
    wanted = tuple(channels) if channels is not None else tuple(daq.sensors)
    document = {
        "version": CACHE_VERSION,
        "program": hashlib.sha256(
            program.to_text().encode("utf-8")
        ).hexdigest(),
        "machine": describe(machine),
        "noise": describe(noise),
        "daq": _describe_daq(daq),
        "channels": list(wanted),
        "seed": int(seed),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-nsync``."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-nsync"


#: (signals, layer_times, duration) as stored per cache entry.
RunPayload = Tuple[Dict[str, "object"], Tuple[float, ...], float]

#: Exceptions that mean "this entry is unreadable" rather than a bug:
#: truncated/garbage archives (``BadZipFile`` is *not* an ``OSError``),
#: missing members, and malformed npy headers all behave like a miss.
_CORRUPT_ENTRY_ERRORS = (OSError, KeyError, ValueError, zipfile.BadZipFile)

#: Per-process counter giving every ``put`` a distinct tmp name.  Combined
#: with the pid, two writers publishing the same key can never share a tmp
#: file, so neither can replace a half-written archive into place.
_TMP_COUNTER = itertools.count()


class RunCache:
    """On-disk, content-addressed store of simulated run payloads.

    Entries live under ``<directory>/<key[:2]>/<key>.npz`` (two-level
    fan-out keeps directory listings manageable for large campaigns).  The
    cache counts ``hits``/``misses`` for observability and exposes
    :meth:`clear` plus an :meth:`evict` API bounding entry count or bytes.
    """

    def __init__(self, directory: Optional[PathLike] = None) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )
        if self.directory.exists() and not self.directory.is_dir():
            # Fail here, not after the first (expensive) simulated run.
            raise ValueError(
                f"cache directory {self.directory} exists and is not "
                "a directory"
            )
        self.hits = 0
        self.misses = 0

    # -- key/path plumbing -------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.npz"

    def _entries(self) -> Iterable[Path]:
        if not self.directory.exists():
            return []
        return sorted(
            p
            for p in self.directory.glob("*/*.npz")
            if not p.name.endswith(".tmp.npz")
        )

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def total_bytes(self) -> int:
        # A concurrent writer/evictor may unlink an entry between the scan
        # and the stat; a vanished entry simply contributes nothing.
        total = 0
        for p in self._entries():
            try:
                total += p.stat().st_size
            except FileNotFoundError:
                continue
        return total

    # -- payload IO --------------------------------------------------------
    def _load(self, key: str, loader):
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            payload = loader(path)
        except _CORRUPT_ENTRY_ERRORS:
            # A truncated/corrupt entry behaves like a miss and is removed
            # so the slot repopulates cleanly.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def get(self, key: str) -> Optional[RunPayload]:
        """Load a payload eagerly, or ``None`` (a miss) if absent."""
        from .io import load_run_payload

        return self._load(key, load_run_payload)

    def get_lazy(self, key: str):
        """A :class:`~repro.io.LazyRunPayload` handle, or ``None`` (a miss).

        The handle reads only the archive metadata up front; channel arrays
        are memory-mapped on first access.  Corrupt entries are removed and
        miss, exactly like :meth:`get` — though corruption *past* the
        metadata (a torn sample array with an intact zip directory) can
        only surface later, when the bad pages are actually touched.
        """
        from .io import LazyRunPayload

        return self._load(key, LazyRunPayload)

    def put(self, key: str, signals, layer_times, duration) -> Path:
        """Store one simulated run under its content address.

        The payload is staged under a per-writer unique tmp name (pid +
        in-process counter) and published with an atomic ``os.replace``, so
        any number of concurrent writers of the *same* key race safely:
        each publishes only its own fully-written archive, and readers see
        either nothing or a complete entry.
        """
        from .io import save_run_payload

        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f"{key}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp.npz"
        )
        try:
            save_run_payload(tmp, signals, layer_times, duration)
            os.replace(tmp, path)  # atomic publish
        finally:
            tmp.unlink(missing_ok=True)  # no-op unless the publish failed
        return path

    # -- maintenance -------------------------------------------------------
    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def evict(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Drop least-recently-modified entries until under the bounds.

        Entries unlinked mid-scan by a concurrent writer or evictor are
        skipped: they no longer occupy space, so they neither count against
        the bounds nor count as removed here.
        """
        stated: List[Tuple[Path, os.stat_result]] = []
        for path in self._entries():
            try:
                stated.append((path, path.stat()))
            except FileNotFoundError:
                continue
        stated.sort(key=lambda item: item[1].st_mtime, reverse=True)
        removed = 0
        kept_bytes = 0
        for i, (path, stat) in enumerate(stated):
            size = stat.st_size
            over_count = max_entries is not None and i >= max_entries
            over_bytes = max_bytes is not None and kept_bytes + size > max_bytes
            if over_count or over_bytes:
                path.unlink(missing_ok=True)
                removed += 1
            else:
                kept_bytes += size
        return removed

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


def resolve_cache(
    cache: Union["RunCache", PathLike, None]
) -> Optional[RunCache]:
    """Accept a :class:`RunCache`, a directory path, or ``None``."""
    if cache is None or isinstance(cache, RunCache):
        return cache
    return RunCache(cache)
