"""Short-Time Fourier Transform spectrograms (paper Table III).

A spectrogram turns a signal into "a new signal with a reduced sampling rate
and an increased number of channels": each STFT frame becomes one sample
whose channels are the magnitudes of the frequency bins of every input
channel.  That is exactly how NSYNC and the baseline IDSs consume it, so
:func:`spectrogram` returns a :class:`~repro.signals.signal.Signal`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .signal import Signal
from .windows import get_window

__all__ = ["SpectrogramConfig", "spectrogram", "PAPER_SPECTROGRAMS"]


@dataclass(frozen=True)
class SpectrogramConfig:
    """STFT configuration in the paper's Table III terms.

    ``delta_f`` is the spectral resolution in Hz (reciprocal of the window
    length in seconds); ``delta_t`` is the hop in seconds; ``window`` names
    the taper (``"BH"`` or ``"Boxcar"``).
    """

    delta_f: float
    delta_t: float
    window: str = "BH"

    def n_window(self, sample_rate: float) -> int:
        """STFT window length in samples for a given input rate."""
        n = int(round(sample_rate / self.delta_f))
        return max(1, n)

    def n_hop(self, sample_rate: float) -> int:
        """STFT hop length in samples for a given input rate."""
        n = int(round(self.delta_t * sample_rate))
        return max(1, n)

    def n_bins(self, sample_rate: float) -> int:
        """Number of one-sided frequency bins per input channel."""
        return self.n_window(sample_rate) // 2 + 1


def spectrogram(signal: Signal, config: SpectrogramConfig) -> Signal:
    """Compute the magnitude spectrogram of every channel of ``signal``.

    The result has sample rate ``1 / delta_t`` and
    ``n_bins * signal.n_channels`` channels, laid out channel-major: input
    channel 0's bins first, then channel 1's, and so on.
    """
    n_win = config.n_window(signal.sample_rate)
    n_hop = config.n_hop(signal.sample_rate)
    if signal.n_samples < n_win:
        raise ValueError(
            f"signal has {signal.n_samples} samples but the STFT window "
            f"needs {n_win}"
        )
    taper = get_window(config.window, n_win)
    n_frames = 1 + (signal.n_samples - n_win) // n_hop
    n_bins = n_win // 2 + 1

    frames = np.empty((n_frames, n_bins * signal.n_channels))
    for i in range(n_frames):
        chunk = signal.data[i * n_hop : i * n_hop + n_win, :]
        tapered = chunk * taper[:, np.newaxis]
        mags = np.abs(np.fft.rfft(tapered, axis=0))  # (n_bins, C)
        frames[i, :] = mags.T.reshape(-1)

    out_rate = signal.sample_rate / n_hop
    return Signal(frames, out_rate)


# Table III of the paper, keyed by side-channel ID.  The channel counts in
# the paper (e.g. 101 x 6 for ACC) follow from these resolutions and the
# Table II sample rates.
PAPER_SPECTROGRAMS = {
    "ACC": SpectrogramConfig(delta_f=20.0, delta_t=1.0 / 80.0, window="BH"),
    "TMP": SpectrogramConfig(delta_f=20.0, delta_t=1.0 / 80.0, window="BH"),
    "MAG": SpectrogramConfig(delta_f=5.0, delta_t=1.0 / 20.0, window="BH"),
    "AUD": SpectrogramConfig(delta_f=120.0, delta_t=1.0 / 240.0, window="BH"),
    "EPT": SpectrogramConfig(delta_f=120.0, delta_t=1.0 / 240.0, window="BH"),
    "PWR": SpectrogramConfig(delta_f=60.0, delta_t=1.0 / 120.0, window="Boxcar"),
}

#: Table II sample rates, needed to rescale Table III for simulated signals.
_PAPER_RATES = {
    "ACC": 4000.0,
    "TMP": 4000.0,
    "MAG": 100.0,
    "AUD": 48000.0,
    "EPT": 96000.0,
    "PWR": 12000.0,
}


def scaled_spectrogram_config(
    channel: str, sample_rate: float
) -> SpectrogramConfig:
    """Table III rescaled so the *bin structure* survives rate scaling.

    The simulated sensors run below the paper's native rates (DESIGN.md).
    Keeping Table III's absolute resolutions at a lower rate would shrink
    the STFT window and collapse the bin count — e.g. the 60 Hz mains hum
    would smear across most of a 9-bin EPT spectrogram instead of occupying
    1 of 401 bins.  Scaling ``delta_f`` (down) and ``delta_t`` (up) by the
    rate ratio preserves the paper's window length *in samples*, hence its
    exact channel counts (101 x 6 for ACC, 401 for EPT, ...).
    """
    base = PAPER_SPECTROGRAMS[channel]
    ratio = sample_rate / _PAPER_RATES[channel]
    if ratio >= 1.0:
        return base
    return SpectrogramConfig(
        delta_f=base.delta_f * ratio,
        delta_t=base.delta_t / ratio,
        window=base.window,
    )
