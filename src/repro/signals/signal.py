"""Multi-channel sampled-signal container.

The paper's signal notation (Section V-A) treats a side-channel signal as a
sequence ``x[n]`` of vectors: ``n`` is the time index, and each sample has one
or more *channels*.  :class:`Signal` stores that as a 2-D ``numpy`` array of
shape ``(n_samples, n_channels)`` together with the sampling rate, and
provides the slicing and windowing primitives that the synchronizers
(``repro.sync``) and the comparator (``repro.core``) are written against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

import numpy as np

__all__ = ["Signal", "Window"]


@dataclass(frozen=True)
class Window:
    """One analysis window of a signal.

    ``index`` is the window index ``i`` of Eq. (6)-(7); ``start`` is the
    sample offset of the window's first sample in the parent signal.
    """

    index: int
    start: int
    data: np.ndarray

    @property
    def length(self) -> int:
        """Number of samples in the window."""
        return self.data.shape[0]


class Signal:
    """A uniformly-sampled, multi-channel signal.

    Parameters
    ----------
    data:
        Array of shape ``(n_samples,)`` or ``(n_samples, n_channels)``.
        A 1-D array is promoted to a single-channel 2-D array.
    sample_rate:
        Sampling frequency ``f_s`` in Hz.  Must be positive.
    channel_names:
        Optional human-readable channel labels (e.g. ``["ax", "ay", "az"]``).

    The underlying array is stored as ``float64`` and is never mutated by
    :class:`Signal` methods; slicing returns views where numpy allows it.
    """

    __slots__ = ("_data", "_sample_rate", "_channel_names")

    def __init__(
        self,
        data: Union[np.ndarray, Sequence[float]],
        sample_rate: float,
        channel_names: Optional[Sequence[str]] = None,
    ) -> None:
        array = np.asarray(data, dtype=np.float64)
        if array.ndim == 1:
            array = array[:, np.newaxis]
        if array.ndim != 2:
            raise ValueError(
                f"signal data must be 1-D or 2-D, got shape {array.shape}"
            )
        if sample_rate <= 0:
            raise ValueError(f"sample_rate must be positive, got {sample_rate}")
        if channel_names is not None:
            channel_names = tuple(channel_names)
            if len(channel_names) != array.shape[1]:
                raise ValueError(
                    f"{len(channel_names)} channel names given for "
                    f"{array.shape[1]} channels"
                )
        self._data = array
        self._sample_rate = float(sample_rate)
        self._channel_names = channel_names

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The raw ``(n_samples, n_channels)`` array."""
        return self._data

    @property
    def sample_rate(self) -> float:
        """Sampling frequency ``f_s`` in Hz."""
        return self._sample_rate

    @property
    def n_samples(self) -> int:
        """Number of time samples ``N``."""
        return self._data.shape[0]

    @property
    def n_channels(self) -> int:
        """Number of channels ``C``."""
        return self._data.shape[1]

    @property
    def duration(self) -> float:
        """Signal duration in seconds."""
        return self.n_samples / self._sample_rate

    @property
    def channel_names(self) -> Optional[tuple]:
        """Channel labels, or ``None`` when unnamed."""
        return self._channel_names

    @property
    def times(self) -> np.ndarray:
        """Time axis in seconds: ``t = n / f_s``."""
        return np.arange(self.n_samples) / self._sample_rate

    def __len__(self) -> int:
        return self.n_samples

    def __repr__(self) -> str:
        return (
            f"Signal(n_samples={self.n_samples}, n_channels={self.n_channels},"
            f" sample_rate={self._sample_rate:g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signal):
            return NotImplemented
        return (
            self._sample_rate == other._sample_rate
            and self._data.shape == other._data.shape
            and bool(np.array_equal(self._data, other._data))
        )

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "Signal":
        """Return ``x[start:stop]`` (paper notation ``x[n1:n2]``).

        Out-of-range indexes are clipped to the valid range, matching how a
        real-time consumer sees a signal that has not fully arrived yet.
        """
        start = max(0, start)
        stop = min(self.n_samples, max(start, stop))
        return Signal(
            self._data[start:stop], self._sample_rate, self._channel_names
        )

    def channel(self, c: int) -> np.ndarray:
        """Return all samples of channel ``c`` (paper notation ``x[:, c]``)."""
        return self._data[:, c]

    def slice_seconds(self, t_start: float, t_stop: float) -> "Signal":
        """Slice by time in seconds rather than sample index."""
        return self.slice(
            int(round(t_start * self._sample_rate)),
            int(round(t_stop * self._sample_rate)),
        )

    # ------------------------------------------------------------------
    # Windowing (Eq. 6-7)
    # ------------------------------------------------------------------
    def window(self, index: int, n_win: int, n_hop: int, offset: int = 0) -> Window:
        """Return the ``index``-th analysis window with ``offset`` samples.

        With ``offset == 0`` this is ``a{i}`` of Eq. (6); a nonzero offset
        gives ``b{i; offset}`` of Eq. (8).  Windows that extend past either
        end of the signal are truncated.
        """
        start = index * n_hop + offset
        return Window(index, start, self.slice(start, start + n_win).data)

    def n_windows(self, n_win: int, n_hop: int) -> int:
        """Number of complete windows of width ``n_win`` and hop ``n_hop``."""
        if self.n_samples < n_win:
            return 0
        return 1 + (self.n_samples - n_win) // n_hop

    def iter_windows(self, n_win: int, n_hop: int) -> Iterator[Window]:
        """Iterate over all complete analysis windows."""
        for i in range(self.n_windows(n_win, n_hop)):
            yield self.window(i, n_win, n_hop)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(signals: Sequence["Signal"]) -> "Signal":
        """Concatenate signals in time.  Rates and channel counts must match."""
        if not signals:
            raise ValueError("cannot concatenate zero signals")
        rate = signals[0].sample_rate
        channels = signals[0].n_channels
        for s in signals[1:]:
            if s.sample_rate != rate:
                raise ValueError("sample rates differ")
            if s.n_channels != channels:
                raise ValueError("channel counts differ")
        return Signal(
            np.concatenate([s.data for s in signals], axis=0),
            rate,
            signals[0].channel_names,
        )

    def with_data(self, data: np.ndarray) -> "Signal":
        """Return a new signal with the same rate but different samples."""
        names = self._channel_names
        array = np.asarray(data, dtype=np.float64)
        if array.ndim == 1:
            array = array[:, np.newaxis]
        if names is not None and array.shape[1] != len(names):
            names = None
        return Signal(array, self._sample_rate, names)

    def pad_to(self, n_samples: int) -> "Signal":
        """Zero-pad (or return unchanged) so the signal has ``n_samples``."""
        if self.n_samples >= n_samples:
            return self
        pad = np.zeros((n_samples - self.n_samples, self.n_channels))
        return self.with_data(np.concatenate([self._data, pad], axis=0))
