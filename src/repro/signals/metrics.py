"""Similarity functions and distance metrics (paper Sections V-B and VII-A).

All functions operate on 1-D vectors or 2-D ``(n_samples, n_channels)``
arrays.  For multi-channel inputs the metric is computed per channel along
the time axis and averaged across channels, exactly as the paper prescribes:
this "discards channel-wise information and focuses on time-wise
information", which empirically raises the SNR of the score.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "correlation_similarity",
    "correlation_distance",
    "cosine_similarity",
    "cosine_distance",
    "mean_absolute_error",
    "euclidean_distance",
    "manhattan_distance",
    "SIMILARITY_FUNCTIONS",
    "DISTANCE_METRICS",
]

# A degenerate (constant) window has zero variance; the correlation
# coefficient is undefined there.  We define it as zero similarity, which is
# the conservative choice for both TDE (no preferred alignment) and the
# comparator (maximum distance 1.0 signals "nothing recognisable").
_EPS = 1e-12


def _as_2d(u: np.ndarray) -> np.ndarray:
    u = np.asarray(u, dtype=np.float64)
    if u.ndim == 1:
        return u[:, np.newaxis]
    if u.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D array, got shape {u.shape}")
    return u


def _check_shapes(u: np.ndarray, v: np.ndarray) -> None:
    if u.shape != v.shape:
        raise ValueError(f"shape mismatch: {u.shape} vs {v.shape}")
    if u.shape[0] == 0:
        raise ValueError("empty vectors have no similarity")


def correlation_similarity(u: np.ndarray, v: np.ndarray) -> float:
    """Pearson correlation coefficient, channel-averaged (Eq. 3).

    Returns a value in ``[-1, 1]``; constant channels contribute 0.
    """
    u2, v2 = _as_2d(u), _as_2d(v)
    _check_shapes(u2, v2)
    du = u2 - u2.mean(axis=0, keepdims=True)
    dv = v2 - v2.mean(axis=0, keepdims=True)
    num = np.sum(du * dv, axis=0)
    den = np.linalg.norm(du, axis=0) * np.linalg.norm(dv, axis=0)
    scores = np.where(den > _EPS, num / np.maximum(den, _EPS), 0.0)
    return float(scores.mean())


def correlation_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Correlation distance ``1 - r`` (Eq. 14), channel-averaged.

    Range ``[0, 2]``; 0 for perfectly correlated windows.  Insensitive to
    per-run gain changes, which is why NSYNC uses it by default.
    """
    return 1.0 - correlation_similarity(u, v)


def cosine_similarity(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine of the angle between vectors, channel-averaged."""
    u2, v2 = _as_2d(u), _as_2d(v)
    _check_shapes(u2, v2)
    num = np.sum(u2 * v2, axis=0)
    den = np.linalg.norm(u2, axis=0) * np.linalg.norm(v2, axis=0)
    scores = np.where(den > _EPS, num / np.maximum(den, _EPS), 0.0)
    return float(scores.mean())


def cosine_distance(u: np.ndarray, v: np.ndarray) -> float:
    """``1 - cosine_similarity``; used by Belikovetsky's IDS."""
    return 1.0 - cosine_similarity(u, v)


def mean_absolute_error(u: np.ndarray, v: np.ndarray) -> float:
    """Mean absolute error; the distance metric of Moore's IDS."""
    u2, v2 = _as_2d(u), _as_2d(v)
    _check_shapes(u2, v2)
    return float(np.abs(u2 - v2).mean())


def euclidean_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Channel-averaged L2 distance (gain-sensitive; kept for comparison)."""
    u2, v2 = _as_2d(u), _as_2d(v)
    _check_shapes(u2, v2)
    return float(np.linalg.norm(u2 - v2, axis=0).mean())


def manhattan_distance(u: np.ndarray, v: np.ndarray) -> float:
    """Channel-averaged L1 distance (gain-sensitive; kept for comparison)."""
    u2, v2 = _as_2d(u), _as_2d(v)
    _check_shapes(u2, v2)
    return float(np.abs(u2 - v2).sum(axis=0).mean())


Metric = Callable[[np.ndarray, np.ndarray], float]

SIMILARITY_FUNCTIONS: dict = {
    "correlation": correlation_similarity,
    "cosine": cosine_similarity,
}

DISTANCE_METRICS: dict = {
    "correlation": correlation_distance,
    "cosine": cosine_distance,
    "mae": mean_absolute_error,
    "euclidean": euclidean_distance,
    "manhattan": manhattan_distance,
}
