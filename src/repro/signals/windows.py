"""Tapering windows used by TDEB and the STFT front-end.

Only the three windows the paper uses are provided: the Gaussian window that
biases TDE (Fig. 5), and the Blackman-Harris / boxcar windows of the
spectrogram configurations (Table III).
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_window", "blackman_harris_window", "boxcar_window", "get_window"]


def gaussian_window(length: int, sigma: float) -> np.ndarray:
    """Gaussian window of ``length`` samples centred at ``(length - 1) / 2``.

    ``sigma`` is the standard deviation in samples (the paper's
    ``n_sigma``).  The peak value is 1.
    """
    if length <= 0:
        raise ValueError(f"window length must be positive, got {length}")
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    n = np.arange(length, dtype=np.float64)
    centre = (length - 1) / 2.0
    return np.exp(-0.5 * ((n - centre) / sigma) ** 2)


# Coefficients of the 4-term minimum-sidelobe Blackman-Harris window.
_BH_COEFFS = (0.35875, 0.48829, 0.14128, 0.01168)


def blackman_harris_window(length: int) -> np.ndarray:
    """4-term Blackman-Harris window (the "BH" window of Table III)."""
    if length <= 0:
        raise ValueError(f"window length must be positive, got {length}")
    if length == 1:
        return np.ones(1)
    n = np.arange(length, dtype=np.float64)
    a0, a1, a2, a3 = _BH_COEFFS
    x = 2.0 * np.pi * n / (length - 1)
    return a0 - a1 * np.cos(x) + a2 * np.cos(2 * x) - a3 * np.cos(3 * x)


def boxcar_window(length: int) -> np.ndarray:
    """Rectangular window (used for the PWR spectrogram in Table III)."""
    if length <= 0:
        raise ValueError(f"window length must be positive, got {length}")
    return np.ones(length, dtype=np.float64)


_WINDOWS = {
    "blackman-harris": blackman_harris_window,
    "bh": blackman_harris_window,
    "boxcar": boxcar_window,
}


def get_window(name: str, length: int) -> np.ndarray:
    """Look up a taper by the name used in Table III (``BH`` or ``Boxcar``)."""
    try:
        factory = _WINDOWS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown window {name!r}; expected one of {sorted(_WINDOWS)}"
        ) from None
    return factory(length)
