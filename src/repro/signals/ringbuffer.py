"""Preallocated, geometrically-grown sample buffer for streaming hot paths.

Every incremental component of the detection core (engine sample/repair
buffers, the streaming DWM cursor) used to grow its buffered tail with
``np.concatenate`` on every chunk — an O(buffer) copy *per push*, which at
DAQ-sized chunks (tens of samples) dominated the whole pipeline.

:class:`SampleRing` replaces that pattern with a contiguous tail buffer that

* grows geometrically (amortized O(1) appends; a chunk is copied once into
  preallocated space instead of re-copying the whole tail),
* trims a consumed prefix *logically* (pointer bump, no copy; the space is
  reclaimed by compaction the next time an append would not fit), and
* addresses samples by their **absolute** index in the stream, so callers
  never re-derive "buffer-relative" offsets.

The buffer is "ring-like" rather than a textbook circular buffer on
purpose: keeping the live tail contiguous means :meth:`view` hands out
zero-copy numpy views that feed straight into vectorized kernels — a true
wraparound ring would force a copy (or two-part views) on exactly the
windows the hot path reads most.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

__all__ = ["SampleRing"]

#: Smallest backing-store capacity (rows); avoids pathological regrowth for
#: the first few one-sample pushes.
_MIN_CAPACITY = 64


class SampleRing:
    """Contiguous streaming buffer with absolute-index addressing.

    Parameters
    ----------
    n_channels:
        Row width.  ``None`` makes the ring 1-D (a stream of scalars, e.g.
        the engine's per-row repair mask); an integer makes rows
        ``(n_channels,)`` vectors.
    dtype:
        Element dtype (default ``float64``).

    The ring exposes the retained range as ``[start, end)`` in absolute
    stream coordinates: ``start`` advances on :meth:`trim_to`, ``end`` on
    :meth:`append`.
    """

    __slots__ = ("_data", "_lo", "_n", "_start", "_channels")

    def __init__(
        self,
        n_channels: Optional[int] = None,
        dtype: Union[type, np.dtype] = np.float64,
        capacity: int = _MIN_CAPACITY,
    ) -> None:
        self._channels = n_channels
        capacity = max(int(capacity), _MIN_CAPACITY)
        self._data = np.empty(self._shape(capacity), dtype=dtype)
        self._lo = 0      # physical index of the first retained row
        self._n = 0       # number of retained rows
        self._start = 0   # absolute stream index of the first retained row

    def _shape(self, rows: int) -> Tuple[int, ...]:
        if self._channels is None:
            return (rows,)
        return (rows, self._channels)

    # ------------------------------------------------------------------
    @property
    def start(self) -> int:
        """Absolute stream index of the first retained sample."""
        return self._start

    @property
    def end(self) -> int:
        """Absolute stream index one past the last retained sample."""
        return self._start + self._n

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    def append(self, samples: np.ndarray) -> None:
        """Append a chunk of rows; amortized O(len(chunk))."""
        k = int(samples.shape[0])
        if k == 0:
            return
        cap = self._data.shape[0]
        if self._lo + self._n + k > cap:
            need = self._n + k
            if need > cap:
                # Geometric growth: double (at least) so the per-sample
                # copy cost stays amortized O(1).
                new_cap = max(2 * cap, need)
                fresh = np.empty(self._shape(new_cap), dtype=self._data.dtype)
                fresh[: self._n] = self._data[self._lo : self._lo + self._n]
                self._data = fresh
            else:
                # Enough total capacity once the trimmed prefix is
                # reclaimed: compact the live tail to the front in place.
                self._data[: self._n] = self._data[self._lo : self._lo + self._n]
            self._lo = 0
        pos = self._lo + self._n
        self._data[pos : pos + k] = samples
        self._n += k

    def view(self, start: int, stop: int) -> np.ndarray:
        """Zero-copy view of the absolute sample range ``[start, stop)``.

        ``stop`` is clamped to :attr:`end` (mirroring Python slice
        semantics for windows that poke past the buffered tail), but
        ``start`` below :attr:`start` is a hard error: it would silently
        read samples that were already trimmed away.
        """
        if start < self._start:
            raise IndexError(
                f"sample {start} was already trimmed "
                f"(buffer starts at {self._start})"
            )
        stop = min(stop, self.end)
        a = start - self._start + self._lo
        b = max(stop - self._start, start - self._start) + self._lo
        return self._data[a:b]

    def tail(self) -> np.ndarray:
        """Zero-copy view of everything retained (``[start, end)``)."""
        return self._data[self._lo : self._lo + self._n]

    def trim_to(self, abs_index: int) -> None:
        """Logically drop all samples before ``abs_index`` (no copy)."""
        cut = min(abs_index - self._start, self._n)
        if cut <= 0:
            return
        self._lo += cut
        self._n -= cut
        self._start += cut

    def load(self, data: np.ndarray, start: int) -> None:
        """Replace the retained tail (checkpoint restore)."""
        data = np.asarray(data, dtype=self._data.dtype)
        if self._channels is None:
            rows = data.reshape(-1)
        else:
            rows = data.reshape(-1, self._channels)
        self._lo = 0
        self._n = int(rows.shape[0])
        self._start = int(start)
        if self._n > self._data.shape[0]:
            self._data = np.empty(
                self._shape(max(2 * self._n, _MIN_CAPACITY)),
                dtype=self._data.dtype,
            )
        self._data[: self._n] = rows
