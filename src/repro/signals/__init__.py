"""Signal substrate: containers, metrics, windows, filters, spectrograms."""

from .signal import Signal, Window
from .ringbuffer import SampleRing
from .metrics import (
    DISTANCE_METRICS,
    SIMILARITY_FUNCTIONS,
    correlation_distance,
    correlation_similarity,
    cosine_distance,
    cosine_similarity,
    euclidean_distance,
    manhattan_distance,
    mean_absolute_error,
)
from .windows import (
    blackman_harris_window,
    boxcar_window,
    gaussian_window,
    get_window,
)
from .filters import decimate, moving_average, resample_linear, trailing_min_filter
from .spectrogram import (
    PAPER_SPECTROGRAMS,
    SpectrogramConfig,
    scaled_spectrogram_config,
    spectrogram,
)

__all__ = [
    "Signal",
    "Window",
    "SampleRing",
    "DISTANCE_METRICS",
    "SIMILARITY_FUNCTIONS",
    "correlation_distance",
    "correlation_similarity",
    "cosine_distance",
    "cosine_similarity",
    "euclidean_distance",
    "manhattan_distance",
    "mean_absolute_error",
    "blackman_harris_window",
    "boxcar_window",
    "gaussian_window",
    "get_window",
    "decimate",
    "moving_average",
    "resample_linear",
    "trailing_min_filter",
    "PAPER_SPECTROGRAMS",
    "SpectrogramConfig",
    "scaled_spectrogram_config",
    "spectrogram",
]
