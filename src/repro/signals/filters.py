"""Array filters used by the discriminator and the evaluation pipeline.

The discriminator suppresses spikes in the horizontal/vertical distance
arrays with a trailing minimum filter (Eq. 21-22); Belikovetsky's IDS uses a
moving average.  Both are implemented here over plain 1-D numpy arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["trailing_min_filter", "moving_average", "decimate", "resample_linear"]


def trailing_min_filter(values: np.ndarray, window: int = 3) -> np.ndarray:
    """Trailing minimum over the last ``window`` samples (Eq. 21-22).

    ``out[i] = min(values[max(0, i - window + 1) : i + 1])``.  The first
    ``window - 1`` outputs use however many samples are available, matching
    a real-time filter that has not yet seen a full window.  A spike must
    persist for ``window`` consecutive samples to survive, which is what
    suppresses the isolated false-positive spikes caused by time noise.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {values.shape}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or values.size == 0:
        return values.copy()
    out = np.empty_like(values)
    for i in range(values.size):
        out[i] = values[max(0, i - window + 1) : i + 1].min()
    return out


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average with a ramp-up for the first samples."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"expected a 1-D array, got shape {values.shape}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if values.size == 0:
        return values.copy()
    csum = np.concatenate([[0.0], np.cumsum(values)])
    out = np.empty_like(values)
    for i in range(values.size):
        lo = max(0, i - window + 1)
        out[i] = (csum[i + 1] - csum[lo]) / (i + 1 - lo)
    return out


def decimate(values: np.ndarray, factor: int) -> np.ndarray:
    """Keep every ``factor``-th sample (no anti-alias filter).

    Used by the DAQ model to derive low-rate channels (e.g. MAG at 100 Hz)
    from the high-rate simulation grid where the spectral content is known
    to be band-limited already.
    """
    values = np.asarray(values, dtype=np.float64)
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return values[::factor].copy()


def resample_linear(values: np.ndarray, n_out: int) -> np.ndarray:
    """Linearly resample a 1-D or 2-D ``(n, c)`` array to ``n_out`` samples."""
    values = np.asarray(values, dtype=np.float64)
    if n_out < 1:
        raise ValueError(f"n_out must be >= 1, got {n_out}")
    if values.ndim == 1:
        values = values[:, np.newaxis]
        squeeze = True
    elif values.ndim == 2:
        squeeze = False
    else:
        raise ValueError(f"expected 1-D or 2-D array, got shape {values.shape}")
    n_in = values.shape[0]
    if n_in == 0:
        raise ValueError("cannot resample an empty array")
    x_in = np.linspace(0.0, 1.0, n_in)
    x_out = np.linspace(0.0, 1.0, n_out)
    out = np.column_stack(
        [np.interp(x_out, x_in, values[:, c]) for c in range(values.shape[1])]
    )
    return out[:, 0] if squeeze else out
