"""Gao's IDS [12]: layer-synchronized point-by-point comparison.

Gao et al. monitor multiple side channels and compare estimated state
variables against intended ones *layer by layer* — the signals are
re-aligned at every layer change (detected by a dedicated bed
accelerometer), then compared point by point within the layer.  Aligning at
layer boundaries is a coarse form of dynamic synchronization: time noise
accumulated in previous layers is cancelled, but drift *within* a layer is
not, and the original has no automatic decision module at all, so (as in
the paper's evaluation) we attach NSYNC's OCC discriminator with ``r = 0``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.occ import occ_threshold
from ..signals.filters import trailing_min_filter
from .base import BaselineDetection, BaselineIds, ProcessRecording

__all__ = ["GaoIds"]


class GaoIds(BaselineIds):
    """Per-layer re-aligned MAE comparison (coarse DSYNC)."""

    name = "gao"

    def __init__(self, r: float = 0.0, block: int = 64) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self.r = r
        self.block = block
        self.reference: Optional[ProcessRecording] = None
        self.threshold: Optional[float] = None
        self.layer_count_tolerance: Optional[float] = None

    # ------------------------------------------------------------------
    def _distance_profile(self, observed: ProcessRecording) -> np.ndarray:
        """Blockwise MAE, re-synchronized at every layer change."""
        if self.reference is None:
            raise RuntimeError("fit() must run before detect()")
        ref_layers = self.reference.layer_slices()
        obs_layers = observed.layer_slices()

        blocks: List[np.ndarray] = []
        for ref_seg, obs_seg in zip(ref_layers, obs_layers):
            n = min(ref_seg.n_samples, obs_seg.n_samples)
            if n == 0:
                continue
            pointwise = np.abs(obs_seg.data[:n] - ref_seg.data[:n]).mean(axis=1)
            n_blocks = n // self.block
            if n_blocks == 0:
                blocks.append(np.array([pointwise.mean()]))
            else:
                trimmed = pointwise[: n_blocks * self.block]
                blocks.append(trimmed.reshape(n_blocks, self.block).mean(axis=1))
        if not blocks:
            return np.zeros(0)
        return np.concatenate(blocks)

    def fit(
        self,
        reference: ProcessRecording,
        benign: Sequence[ProcessRecording],
    ) -> None:
        self.reference = reference
        maxima: List[float] = []
        layer_diffs: List[float] = []
        for run in benign:
            profile = trailing_min_filter(self._distance_profile(run))
            maxima.append(float(profile.max()) if profile.size else 0.0)
            layer_diffs.append(
                abs(len(run.layer_times) - len(reference.layer_times))
            )
        if not maxima:
            raise ValueError("need at least one benign training run")
        self.threshold = occ_threshold(maxima, self.r)
        self.layer_count_tolerance = occ_threshold(layer_diffs, self.r)

    def detect(self, observed: ProcessRecording) -> BaselineDetection:
        if self.threshold is None or self.reference is None:
            raise RuntimeError("fit() must run before detect()")
        profile = trailing_min_filter(self._distance_profile(observed))
        distance_fired = bool(profile.size and profile.max() > self.threshold)
        # Gao's monitor also reports per-layer state like the layer height,
        # so a change in the number of layers is immediately visible.
        layer_diff = abs(
            len(observed.layer_times) - len(self.reference.layer_times)
        )
        layers_fired = bool(layer_diff > (self.layer_count_tolerance or 0.0))
        return BaselineDetection(
            is_intrusion=distance_fired or layers_fired,
            submodules={"v_dist": distance_fired, "layers": layers_fired},
        )
