"""Prior-work IDSs the paper evaluates against (Section VIII-C/D)."""

from .base import BaselineDetection, BaselineIds, ProcessRecording
from .moore import MooreIds
from .gao import GaoIds
from .bayens import BayensIds
from .belikovetsky import BelikovetskyIds, Pca
from .gatlin import GatlinIds
from .layers import LayerDetector, detect_layer_changes

__all__ = [
    "BaselineDetection",
    "BaselineIds",
    "ProcessRecording",
    "MooreIds",
    "GaoIds",
    "BayensIds",
    "BelikovetskyIds",
    "Pca",
    "GatlinIds",
    "LayerDetector",
    "detect_layer_changes",
]
