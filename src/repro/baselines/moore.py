"""Moore's IDS [18]: point-by-point comparison without synchronization.

The original observes electric currents delivered to actuators and compares
the observed signal against a pre-recorded reference *point by point* using
the mean absolute error.  It has no notion of time noise: once the signals
drift out of alignment, benign distances explode (the paper's Fig. 2), which
is why its accuracy collapses on a real printer.

As in the paper's evaluation, the detection threshold is learned with
NSYNC's OCC scheme (the original used fixed thresholds for a testbed we
don't have); ``r = 0.0`` matches the paper's choice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.occ import occ_threshold
from ..signals.filters import trailing_min_filter
from .base import BaselineDetection, BaselineIds, ProcessRecording

__all__ = ["MooreIds"]


class MooreIds(BaselineIds):
    """Unsynchronized point-by-point MAE comparison.

    ``block`` groups samples into short blocks before thresholding so a
    single-sample glitch cannot fire the detector (and so raw multi-kHz
    signals stay cheap to scan); the comparison itself is still pointwise
    and completely unaware of time noise.
    """

    name = "moore"

    def __init__(self, r: float = 0.0, block: int = 64) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self.r = r
        self.block = block
        self.reference: Optional[ProcessRecording] = None
        self.threshold: Optional[float] = None

    # ------------------------------------------------------------------
    def _distance_profile(self, observed: ProcessRecording) -> np.ndarray:
        """Blockwise-mean |a[n] - b[n]| over the common prefix."""
        if self.reference is None:
            raise RuntimeError("fit() must run before detect()")
        a = observed.signal.data
        b = self.reference.signal.data
        n = min(a.shape[0], b.shape[0])
        if n == 0:
            return np.zeros(0)
        pointwise = np.abs(a[:n] - b[:n]).mean(axis=1)
        n_blocks = n // self.block
        if n_blocks == 0:
            return np.array([pointwise.mean()])
        trimmed = pointwise[: n_blocks * self.block]
        return trimmed.reshape(n_blocks, self.block).mean(axis=1)

    def fit(
        self,
        reference: ProcessRecording,
        benign: Sequence[ProcessRecording],
    ) -> None:
        self.reference = reference
        maxima: List[float] = []
        for run in benign:
            profile = trailing_min_filter(self._distance_profile(run))
            maxima.append(float(profile.max()) if profile.size else 0.0)
        if not maxima:
            raise ValueError("need at least one benign training run")
        self.threshold = occ_threshold(maxima, self.r)

    def detect(self, observed: ProcessRecording) -> BaselineDetection:
        if self.threshold is None:
            raise RuntimeError("fit() must run before detect()")
        profile = trailing_min_filter(self._distance_profile(observed))
        fired = bool(profile.size and profile.max() > self.threshold)
        return BaselineDetection(is_intrusion=fired, submodules={"v_dist": fired})
