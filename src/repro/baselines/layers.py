"""Layer-change detection from side-channel signals.

The layer-synchronized baselines need to know *when* each layer starts:
Gao et al. dedicated an accelerometer on the printing bed to it [12];
Gatlin et al. analyzed the electric currents in the Z motor [13].  Our
simulator knows the exact moments, but a deployment does not — this module
recovers them from the signal itself, so the coarse-DSYNC baselines can be
run end-to-end without oracle inputs.

The detector exploits the same physical fact both papers do: a layer change
is a short burst of Z-axis activity separated by long Z-quiet stretches.
For a printhead IMU that is a burst on the Z acceleration channel; for a
generic signal we fall back to the strongest activity envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..signals.signal import Signal

__all__ = ["LayerDetector", "detect_layer_changes"]


@dataclass
class LayerDetector:
    """Detects layer-change moments from an activity burst pattern.

    Parameters
    ----------
    channel:
        Which channel of the signal carries the layer signature (2 = the Z
        accelerometer channel of our ACC layout).  ``None`` averages all
        channels.
    smooth_seconds:
        Width of the envelope smoothing window.
    threshold_sigmas:
        A burst must exceed ``median + threshold_sigmas * MAD`` of the
        envelope to count.
    min_gap_seconds:
        Bursts closer than this merge into one event (a single layer change
        produces several samples above threshold).
    """

    channel: Optional[int] = 2
    smooth_seconds: float = 0.25
    threshold_sigmas: float = 6.0
    min_gap_seconds: float = 2.0

    def envelope(self, signal: Signal) -> np.ndarray:
        """Smoothed activity envelope of the layer-carrying channel."""
        if self.channel is not None and self.channel < signal.n_channels:
            track = signal.data[:, self.channel]
        else:
            track = signal.data.mean(axis=1)
        activity = np.abs(track - np.median(track))
        width = max(1, int(self.smooth_seconds * signal.sample_rate))
        kernel = np.ones(width) / width
        return np.convolve(activity, kernel, mode="same")

    def detect(self, signal: Signal, trim_boundary: bool = True) -> List[float]:
        """Layer-change times (seconds), earliest first.

        The raw detector fires on *every* Z-activity burst, which includes
        the descent onto layer 0 after homing and the final park move.
        ``trim_boundary`` (default) drops events in the first and last 10%
        of the recording — the calibration any deployment performs, since
        those two events exist in every print, benign or not.
        """
        env = self.envelope(signal)
        median = float(np.median(env))
        mad = float(np.median(np.abs(env - median))) or 1e-12
        threshold = median + self.threshold_sigmas * 1.4826 * mad

        above = env > threshold
        min_gap = int(self.min_gap_seconds * signal.sample_rate)
        events: List[float] = []
        last_index = -min_gap - 1
        for index in np.flatnonzero(above):
            if index - last_index > min_gap:
                events.append(index / signal.sample_rate)
            last_index = index
        if trim_boundary:
            lo = 0.10 * signal.duration
            hi = 0.90 * signal.duration
            events = [t for t in events if lo <= t <= hi]
        return events


def detect_layer_changes(
    signal: Signal,
    channel: Optional[int] = 2,
    expected: Optional[int] = None,
) -> List[float]:
    """Convenience wrapper; optionally auto-tunes to an expected count.

    When ``expected`` is given, the threshold is swept until the detector
    returns that many events (or the sweep is exhausted) — the calibration
    step a deployment performs once against a known-benign print.
    """
    if expected is None:
        return LayerDetector(channel=channel).detect(signal)
    best: List[float] = []
    for sigmas in (12.0, 9.0, 6.0, 4.0, 3.0, 2.0):
        detector = LayerDetector(channel=channel, threshold_sigmas=sigmas)
        events = detector.detect(signal)
        if len(events) == expected:
            return events
        if len(events) == expected + 2:
            # On short prints the 10% boundary trim can miss the layer-0
            # descent and the final park; with exactly two extras they are
            # almost certainly those, so drop the outermost pair.
            return events[1:-1]
        if not best or abs(len(events) - expected) < abs(len(best) - expected):
            best = events
    return best
