"""Common machinery for the prior-work IDSs the paper compares against.

Each baseline consumes a :class:`ProcessRecording` — one side-channel signal
plus the layer-change timestamps of its printing process.  (The paper's
layer-synchronized IDSs obtained those moments from a dedicated bed
accelerometer [12] or from Z-motor currents [13]; the paper itself marked
them manually for Gatlin's IDS.  Our simulator knows them exactly, which is
the most charitable possible setting for these baselines.)

Baselines follow the same fit/detect protocol as
:class:`~repro.core.pipeline.NsyncIds` so the evaluation harness can drive
all IDSs identically.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..signals.signal import Signal

__all__ = ["ProcessRecording", "BaselineDetection", "BaselineIds"]


@dataclass(frozen=True)
class ProcessRecording:
    """One side-channel recording of one printing process."""

    signal: Signal
    layer_times: Sequence[float] = field(default_factory=tuple)

    @property
    def duration(self) -> float:
        return self.signal.duration

    def layer_slices(self) -> List[Signal]:
        """Split the signal into per-layer segments at the layer times."""
        bounds = [0.0] + sorted(self.layer_times) + [self.duration]
        slices = []
        for t0, t1 in zip(bounds[:-1], bounds[1:]):
            if t1 - t0 > 0:
                slices.append(self.signal.slice_seconds(t0, t1))
        return slices


@dataclass(frozen=True)
class BaselineDetection:
    """Verdict of a baseline IDS, with per-sub-module breakdown."""

    is_intrusion: bool
    submodules: Dict[str, bool] = field(default_factory=dict)

    def fired_submodules(self) -> tuple:
        return tuple(name for name, fired in self.submodules.items() if fired)


class BaselineIds(abc.ABC):
    """fit/detect protocol shared by all reproduced prior-work IDSs."""

    #: Identifier used in evaluation tables (e.g. ``"moore"``).
    name: str = "baseline"

    @abc.abstractmethod
    def fit(
        self,
        reference: ProcessRecording,
        benign: Sequence[ProcessRecording],
    ) -> None:
        """Learn whatever state the IDS needs from benign data only."""

    @abc.abstractmethod
    def detect(self, observed: ProcessRecording) -> BaselineDetection:
        """Classify one observed printing process."""
