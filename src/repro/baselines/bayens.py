"""Bayens' IDS [4]: windowed acoustic fingerprint matching.

Bayens et al. split the acoustic signal into long windows (90 s or 120 s in
the paper; configurable here because our simulated prints are shorter) and
retrieve, for every observed window, the best-matching reference window with
a Shazam-style audio search engine (Dejavu).  Two checks follow:

* **Sequence** — the retrieved reference-window indexes must appear in
  order; time noise shifts content across window boundaries, so on a real
  printer this check fires constantly (FPR 1.00 on the paper's UM3).
* **Threshold** — each window's match score must stay above a threshold.
  The paper had no recipe for choosing it on a new printer and used NSYNC's
  OCC with ``r = 0``; we do the same.

The fingerprint is a constellation of spectrogram peaks, matched by counting
aligned peak pairs — the same principle as Dejavu, minimally implemented.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.occ import occ_threshold
from ..signals.signal import Signal
from ..signals.spectrogram import SpectrogramConfig, spectrogram
from .base import BaselineDetection, BaselineIds, ProcessRecording

__all__ = ["BayensIds"]

Fingerprint = Set[Tuple[int, int, int, int]]


def _peak_constellation(spec: np.ndarray, n_peaks_per_frame: int = 3) -> Fingerprint:
    """Hash spectrogram peaks into (bin1, bin2, dt, t-bucket) tuples.

    As in Dejavu, a hash pairs nearby peaks; we additionally code a coarse
    in-window time bucket (Dejavu keeps absolute offsets per hash and checks
    offset consistency — the bucket is the lightweight equivalent), so two
    windows with the same peak population but different arrangement do not
    collide.
    """
    peaks: List[Tuple[int, int]] = []  # (frame, bin)
    for frame in range(spec.shape[0]):
        row = spec[frame]
        if row.size == 0:
            continue
        top = np.argsort(row)[-n_peaks_per_frame:]
        for b in top:
            peaks.append((frame, int(b)))
    hashes: Fingerprint = set()
    fanout = 5
    for i, (t1, b1) in enumerate(peaks):
        for t2, b2 in peaks[i + 1 : i + 1 + fanout]:
            dt = t2 - t1
            if 0 < dt <= 16:
                hashes.add((b1, b2, dt, t1 // 8))
    return hashes


class BayensIds(BaselineIds):
    """Window-by-window acoustic retrieval with sequence + score checks."""

    name = "bayens"

    def __init__(
        self,
        window_seconds: float = 10.0,
        spec_config: Optional[SpectrogramConfig] = None,
        r: float = 0.0,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        self.window_seconds = window_seconds
        # None = adapt the STFT to the signal rate at fit time: a 64-sample
        # analysis window gives 33 bins, enough hash entropy for retrieval.
        self.spec_config = spec_config
        self.r = r
        self._ref_prints: List[Fingerprint] = []
        self.score_threshold: Optional[float] = None

    # ------------------------------------------------------------------
    def _config_for(self, signal: Signal) -> SpectrogramConfig:
        if self.spec_config is not None:
            return self.spec_config
        fs = signal.sample_rate
        return SpectrogramConfig(delta_f=fs / 64.0, delta_t=16.0 / fs, window="BH")

    def _window_fingerprints(self, signal: Signal) -> List[Fingerprint]:
        n_win = int(self.window_seconds * signal.sample_rate)
        config = self._config_for(signal)
        prints: List[Fingerprint] = []
        for start in range(0, signal.n_samples - n_win + 1, n_win):
            chunk = signal.slice(start, start + n_win)
            spec = spectrogram(chunk, config)
            prints.append(_peak_constellation(spec.data))
        return prints

    @staticmethod
    def _match_score(query: Fingerprint, candidate: Fingerprint) -> float:
        """Jaccard similarity of the two hash sets."""
        if not query or not candidate:
            return 0.0
        return len(query & candidate) / len(query | candidate)

    def _retrieve(self, prints: List[Fingerprint]) -> Tuple[List[int], List[float]]:
        """Best reference window and score for each observed window."""
        indexes: List[int] = []
        scores: List[float] = []
        for fp in prints:
            best_idx, best_score = 0, -1.0
            for idx, ref_fp in enumerate(self._ref_prints):
                score = self._match_score(fp, ref_fp)
                if score > best_score:
                    best_idx, best_score = idx, score
            indexes.append(best_idx)
            scores.append(best_score)
        return indexes, scores

    # ------------------------------------------------------------------
    def fit(
        self,
        reference: ProcessRecording,
        benign: Sequence[ProcessRecording],
    ) -> None:
        self._ref_prints = self._window_fingerprints(reference.signal)
        if not self._ref_prints:
            raise ValueError(
                "reference shorter than one retrieval window; "
                "reduce window_seconds"
            )
        minima: List[float] = []
        for run in benign:
            _, scores = self._retrieve(self._window_fingerprints(run.signal))
            minima.append(min(scores) if scores else 0.0)
        if not minima:
            raise ValueError("need at least one benign training run")
        # Threshold below which a window's score is suspicious: the OCC rule
        # applied to -score so Eq. (26) extends the benign envelope downward.
        self.score_threshold = -occ_threshold([-m for m in minima], self.r)

    def detect(self, observed: ProcessRecording) -> BaselineDetection:
        if self.score_threshold is None:
            raise RuntimeError("fit() must run before detect()")
        indexes, scores = self._retrieve(
            self._window_fingerprints(observed.signal)
        )
        out_of_sequence = any(
            later <= earlier for earlier, later in zip(indexes, indexes[1:])
        )
        below = any(score < self.score_threshold for score in scores)
        return BaselineDetection(
            is_intrusion=out_of_sequence or below,
            submodules={"sequence": out_of_sequence, "threshold": below},
        )
