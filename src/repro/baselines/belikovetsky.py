"""Belikovetsky's IDS [5]: PCA-compressed spectrogram, cosine distance.

The audio signal is transformed into a spectrogram, compressed by Principal
Component Analysis down to three channels, and compared against the
similarly-compressed reference *point by point without synchronization*
using the cosine metric.  A 5-second moving average smooths the per-frame
similarities, and an intrusion is declared when four consecutive window
averages drop below the fixed magic number 0.63 — no learning, exactly as
published.  Being blind to time noise, it false-alarms heavily once the
signals drift (FPR 1.00 on the paper's UM3).

The PCA is implemented from scratch on top of ``numpy.linalg.svd``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..signals.signal import Signal
from ..signals.spectrogram import SpectrogramConfig, spectrogram
from .base import BaselineDetection, BaselineIds, ProcessRecording

__all__ = ["Pca", "BelikovetskyIds"]


class Pca:
    """Minimal principal-component projection."""

    def __init__(self, n_components: int = 3) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "Pca":
        """Learn the top components of ``x`` with shape (n_samples, n_dims)."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D data, got shape {x.shape}")
        k = min(self.n_components, x.shape[1], max(1, x.shape[0] - 1))
        self.mean_ = x.mean(axis=0)
        _, _, vt = np.linalg.svd(x - self.mean_, full_matrices=False)
        self.components_ = vt[:k]
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("fit() must run before transform()")
        return (np.asarray(x, dtype=np.float64) - self.mean_) @ self.components_.T


class BelikovetskyIds(BaselineIds):
    """Unsynchronized PCA/cosine comparison with a fixed 0.63 threshold."""

    name = "belikovetsky"

    def __init__(
        self,
        spec_config: Optional[SpectrogramConfig] = None,
        similarity_floor: float = 0.63,
        average_seconds: float = 5.0,
        consecutive_windows: int = 4,
        n_components: int = 3,
    ) -> None:
        self.spec_config = spec_config or SpectrogramConfig(
            delta_f=20.0, delta_t=0.05, window="BH"
        )
        self.similarity_floor = similarity_floor
        self.average_seconds = average_seconds
        self.consecutive_windows = consecutive_windows
        self.pca = Pca(n_components)
        self._reference_compressed: Optional[np.ndarray] = None
        self._frame_rate: Optional[float] = None

    # ------------------------------------------------------------------
    def _compress(self, signal: Signal) -> np.ndarray:
        spec = spectrogram(signal, self.spec_config)
        self._frame_rate = spec.sample_rate
        return self.pca.transform(spec.data)

    def fit(
        self,
        reference: ProcessRecording,
        benign: Sequence[ProcessRecording],
    ) -> None:
        # The PCA basis is learned from the reference spectrogram (the
        # original derives it from a benign print); extra benign runs are
        # not needed — the decision threshold is the published constant.
        spec = spectrogram(reference.signal, self.spec_config)
        self._frame_rate = spec.sample_rate
        self.pca.fit(spec.data)
        self._reference_compressed = self.pca.transform(spec.data)

    def detect(self, observed: ProcessRecording) -> BaselineDetection:
        if self._reference_compressed is None or self._frame_rate is None:
            raise RuntimeError("fit() must run before detect()")
        a = self._compress(observed.signal)
        b = self._reference_compressed
        n = min(a.shape[0], b.shape[0])
        if n == 0:
            return BaselineDetection(is_intrusion=True, submodules={"cosine": True})

        num = np.sum(a[:n] * b[:n], axis=1)
        den = np.linalg.norm(a[:n], axis=1) * np.linalg.norm(b[:n], axis=1)
        similarity = np.where(den > 1e-12, num / np.maximum(den, 1e-12), 0.0)

        # 5-second moving average, then require `consecutive_windows`
        # successive averages below the floor.
        win = max(1, int(self.average_seconds * self._frame_rate))
        kernel = np.ones(win) / win
        averaged = np.convolve(similarity, kernel, mode="valid")
        below = averaged < self.similarity_floor
        run = 0
        fired = False
        for flag in below[:: max(1, win)]:  # non-overlapping windows
            run = run + 1 if flag else 0
            if run >= self.consecutive_windows:
                fired = True
                break
        return BaselineDetection(is_intrusion=fired, submodules={"cosine": fired})
