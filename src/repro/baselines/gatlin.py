"""Gatlin's IDS [13]: layer-change timing + per-layer fingerprints.

Gatlin et al. improved Moore's power-signature IDS in two ways: layer-change
moments (recovered from Z-motor current activity; manually marked in the
paper's reproduction, known exactly in our simulator) are compared against
expected values, and each layer's signal is reduced to a compact fingerprint
whose mismatches are counted.  Intrusion is declared when either the layer
timing deviates beyond a threshold (**Time** sub-module) or the number of
fingerprint mismatches exceeds a threshold (**Match** sub-module).

Aligning per layer is coarse DSYNC: it absorbs drift between layers but not
within them, so the fingerprints still degrade under time noise.

The paper recovered layer moments from Z-motor current activity (and marked
them manually in its own reproduction of this IDS) — an inherently noisy
estimate.  Our simulator knows the moments exactly, which would make the
Time sub-module unrealistically clean, so :class:`GatlinIds` jitters the
*observed* layer moments by ``layer_time_noise`` seconds (std) to model the
estimation error; set it to 0 for the oracle variant.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.occ import occ_threshold
from ..signals.filters import resample_linear
from ..signals.signal import Signal
from .base import BaselineDetection, BaselineIds, ProcessRecording

__all__ = ["GatlinIds"]


class GatlinIds(BaselineIds):
    """Layer timing check + per-layer fingerprint matching."""

    name = "gatlin"

    def __init__(
        self,
        r: float = 0.0,
        fingerprint_size: int = 64,
        layer_time_noise: float = 0.15,
        gross_error_rate: float = 0.12,
        gross_error_scale: float = 2.0,
        seed: int = 0,
    ) -> None:
        if fingerprint_size < 4:
            raise ValueError(
                f"fingerprint_size must be >= 4, got {fingerprint_size}"
            )
        if layer_time_noise < 0:
            raise ValueError(
                f"layer_time_noise must be non-negative, got {layer_time_noise}"
            )
        if not 0 <= gross_error_rate <= 1:
            raise ValueError(
                f"gross_error_rate must be in [0, 1], got {gross_error_rate}"
            )
        self.r = r
        self.fingerprint_size = fingerprint_size
        self.layer_time_noise = layer_time_noise
        self.gross_error_rate = gross_error_rate
        self.gross_error_scale = gross_error_scale
        self._rng = np.random.default_rng(seed)
        self.reference: Optional[ProcessRecording] = None
        self._ref_fingerprints: List[np.ndarray] = []
        self.time_threshold: Optional[float] = None
        self.match_threshold: Optional[float] = None
        self._benign_floor: float = 0.0

    # ------------------------------------------------------------------
    def _fingerprint(self, segment: Signal) -> np.ndarray:
        """Amplitude-normalized envelope, resampled to a fixed length.

        The original extracts per-layer features of the power trace; a
        normalized envelope keeps the comparison gain-insensitive and cheap
        while preserving the within-layer activity pattern.
        """
        envelope = np.abs(
            segment.data - segment.data.mean(axis=0, keepdims=True)
        ).mean(axis=1)
        resampled = resample_linear(envelope, self.fingerprint_size)
        norm = np.linalg.norm(resampled)
        return resampled / norm if norm > 1e-12 else resampled

    def _layer_stats(self, run: ProcessRecording) -> tuple:
        """(layer-change time deviations, fingerprint mismatch fraction)."""
        assert self.reference is not None
        ref_times = np.asarray(sorted(self.reference.layer_times))
        obs_times = np.asarray(sorted(run.layer_times))
        if self.layer_time_noise > 0 and obs_times.size:
            # Layer moments are *estimated* from side-channel activity on a
            # real deployment; model that estimation error: small Gaussian
            # jitter plus occasional gross misdetections (the heavy tail of
            # Z-motor-current event detection).
            obs_times = obs_times + self._rng.normal(
                0.0, self.layer_time_noise, obs_times.size
            )
            gross = self._rng.random(obs_times.size) < self.gross_error_rate
            if gross.any():
                obs_times = obs_times + gross * self._rng.normal(
                    0.0, self.gross_error_scale, obs_times.size
                )
        n_t = min(ref_times.size, obs_times.size)
        time_dev = (
            float(np.abs(obs_times[:n_t] - ref_times[:n_t]).max())
            if n_t
            else 0.0
        )
        # A different number of layer changes is itself a timing violation.
        count_penalty = abs(ref_times.size - obs_times.size)

        obs_fps = [self._fingerprint(seg) for seg in run.layer_slices()]
        n_f = min(len(self._ref_fingerprints), len(obs_fps))
        mismatches = 0
        for ref_fp, obs_fp in zip(self._ref_fingerprints[:n_f], obs_fps[:n_f]):
            if float(ref_fp @ obs_fp) < self._benign_floor:
                mismatches += 1
        mismatches += abs(len(self._ref_fingerprints) - len(obs_fps))
        total = max(len(self._ref_fingerprints), 1)
        return time_dev + count_penalty, mismatches / total

    # ------------------------------------------------------------------
    def fit(
        self,
        reference: ProcessRecording,
        benign: Sequence[ProcessRecording],
    ) -> None:
        self.reference = reference
        self._ref_fingerprints = [
            self._fingerprint(seg) for seg in reference.layer_slices()
        ]
        if not benign:
            raise ValueError("need at least one benign training run")

        # Pass 1: learn the benign fingerprint-similarity floor.
        sims: List[float] = []
        for run in benign:
            obs_fps = [self._fingerprint(seg) for seg in run.layer_slices()]
            for ref_fp, obs_fp in zip(self._ref_fingerprints, obs_fps):
                sims.append(float(ref_fp @ obs_fp))
        self._benign_floor = float(np.min(sims)) - 0.02 if sims else 0.0

        # Pass 2: OCC thresholds on the two per-run statistics.
        time_devs: List[float] = []
        mismatch_fracs: List[float] = []
        for run in benign:
            t_dev, m_frac = self._layer_stats(run)
            time_devs.append(t_dev)
            mismatch_fracs.append(m_frac)
        self.time_threshold = occ_threshold(time_devs, self.r)
        self.match_threshold = occ_threshold(mismatch_fracs, self.r)

    def detect(self, observed: ProcessRecording) -> BaselineDetection:
        if self.time_threshold is None or self.match_threshold is None:
            raise RuntimeError("fit() must run before detect()")
        t_dev, m_frac = self._layer_stats(observed)
        time_fired = t_dev > self.time_threshold
        match_fired = m_frac > self.match_threshold
        return BaselineDetection(
            is_intrusion=time_fired or match_fired,
            submodules={"time": time_fired, "match": match_fired},
        )
