"""Persistence: save/load signals, thresholds, and DWM parameters.

A deployed IDS records its reference signals once, learns its thresholds
once, and then reloads both on every print.  Signals go to ``.npz`` (data +
rate + channel names); the small configuration objects go to JSON so they
stay human-auditable — an operator should be able to read the thresholds
that will stop their printer.
"""

from __future__ import annotations

import json
import struct
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from .core.discriminator import Thresholds
from .signals.signal import Signal
from .sync.dwm import DwmParams

__all__ = [
    "save_signal",
    "load_signal",
    "save_signals",
    "load_signals",
    "save_run_payload",
    "load_run_payload",
    "LazyRunPayload",
    "save_thresholds",
    "load_thresholds",
    "save_dwm_params",
    "load_dwm_params",
]

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Signals
# ---------------------------------------------------------------------------
def save_signal(signal: Signal, path: PathLike) -> None:
    """Write one signal to a ``.npz`` file."""
    path = Path(path)
    payload = {
        "data": signal.data,
        "sample_rate": np.asarray(signal.sample_rate),
    }
    if signal.channel_names is not None:
        payload["channel_names"] = np.asarray(signal.channel_names)
    np.savez_compressed(path, **payload)


def load_signal(path: PathLike) -> Signal:
    """Read a signal written by :func:`save_signal`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        names = None
        if "channel_names" in archive:
            names = [str(n) for n in archive["channel_names"]]
        return Signal(
            archive["data"],
            float(archive["sample_rate"]),
            channel_names=names,
        )


def save_signals(signals: Dict[str, Signal], directory: PathLike) -> None:
    """Write one ``<channel>.npz`` per channel into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for channel_id, signal in signals.items():
        save_signal(signal, directory / f"{channel_id}.npz")


def load_signals(directory: PathLike) -> Dict[str, Signal]:
    """Read every ``*.npz`` in ``directory`` as a channel."""
    directory = Path(directory)
    out: Dict[str, Signal] = {}
    for path in sorted(directory.glob("*.npz")):
        out[path.stem] = load_signal(path)
    if not out:
        raise FileNotFoundError(f"no .npz signals under {directory}")
    return out


# ---------------------------------------------------------------------------
# Whole-run payloads (one .npz per simulated process; the cache's format)
# ---------------------------------------------------------------------------
def save_run_payload(
    path: PathLike,
    signals: Dict[str, Signal],
    layer_times,
    duration: float,
) -> None:
    """Write one simulated run (all channels + timing metadata) to ``.npz``.

    Channel arrays are namespaced as ``<channel>::data`` / ``::rate`` /
    ``::names`` so the whole run stays a single archive — the storage unit
    of :class:`repro.cache.RunCache`.  Stored uncompressed: the sensor
    tracks are near-incompressible noise, and zlib would dominate warm-hit
    latency.
    """
    payload = {
        "__channels": np.asarray(list(signals), dtype=str),
        "__layer_times": np.asarray(list(layer_times), dtype=np.float64),
        "__duration": np.asarray(float(duration)),
    }
    for channel_id, signal in signals.items():
        payload[f"{channel_id}::data"] = signal.data
        payload[f"{channel_id}::rate"] = np.asarray(signal.sample_rate)
        if signal.channel_names is not None:
            payload[f"{channel_id}::names"] = np.asarray(signal.channel_names)
    np.savez(Path(path), **payload)


def load_run_payload(path: PathLike):
    """Read a run written by :func:`save_run_payload`, eagerly.

    Returns ``(signals, layer_times, duration)`` with ``signals`` a
    ``{channel_id: Signal}`` dict in the order it was saved.  This is the
    materializing wrapper around :class:`LazyRunPayload`: every channel is
    decoded into plain in-memory arrays, so the returned payload holds no
    file handles.
    """
    with LazyRunPayload(path) as payload:
        return payload.materialize()


@dataclass(frozen=True)
class _NpyMember:
    """Location of one uncompressed ``.npy`` member inside the archive."""

    offset: int  # absolute file offset of the raw array bytes
    shape: Tuple[int, ...]
    dtype: np.dtype
    fortran_order: bool


def _read_npy_header(f) -> Tuple[Tuple[int, ...], bool, np.dtype]:
    """Parse an npy header at the current file position.

    Returns ``(shape, fortran_order, dtype)`` and leaves the file
    positioned at the first array byte.
    """
    version = np.lib.format.read_magic(f)
    if version == (1, 0):
        return np.lib.format.read_array_header_1_0(f)
    if version == (2, 0):
        return np.lib.format.read_array_header_2_0(f)
    reader = getattr(np.lib.format, "_read_array_header", None)
    if reader is None:
        raise ValueError(f"unsupported npy format version {version}")
    return reader(f, version)


class LazyRunPayload:
    """On-demand view of a run archive written by :func:`save_run_payload`.

    Opening the payload reads only the small metadata members (channel
    list, per-channel sample rates and names, layer times, duration) and
    indexes where each channel's sample array lives inside the zip.
    Channel data is then loaded on first access — and, because
    :func:`save_run_payload` stores members uncompressed, loaded as a
    read-only ``np.memmap`` over the archive file, so "loading" a channel
    costs an fd + page table entries, not a decode of the whole array.
    The OS pages samples in as the analysis actually touches them and can
    evict them under pressure: run-resident memory stays O(working set),
    not O(campaign).

    Compressed or exotic members (a payload produced by some future writer)
    transparently fall back to an eager in-memory read, so the handle is
    correct for any archive the eager loader accepts.

    Context-managed; :meth:`close` drops the handle's internal caches.
    ``Signal`` objects already handed out stay valid — each memmap owns
    its mapping.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._signals: Dict[str, Signal] = {}
        self._members: Dict[str, Optional[_NpyMember]] = {}
        self._rates: Dict[str, float] = {}
        self._names: Dict[str, Optional[Tuple[str, ...]]] = {}
        with zipfile.ZipFile(self.path) as archive:
            self._index_members(archive)
        with np.load(self.path, allow_pickle=False) as archive:
            self.channels: Tuple[str, ...] = tuple(
                str(c) for c in archive["__channels"]
            )
            self.layer_times: Tuple[float, ...] = tuple(
                float(t) for t in archive["__layer_times"]
            )
            self.duration: float = float(archive["__duration"])
            for channel_id in self.channels:
                self._rates[channel_id] = float(
                    archive[f"{channel_id}::rate"]
                )
                names = None
                if f"{channel_id}::names" in archive:
                    names = tuple(
                        str(n) for n in archive[f"{channel_id}::names"]
                    )
                self._names[channel_id] = names

    # -- archive indexing --------------------------------------------------
    def _index_members(self, archive: zipfile.ZipFile) -> None:
        """Map ``<member>.npy`` names to their raw data offsets.

        Only uncompressed (``ZIP_STORED``) members are indexed; anything
        else stays un-indexed and falls back to an eager read.  The local
        file header is re-read from disk because its extra-field length may
        legally differ from the central directory's.
        """
        with open(self.path, "rb") as f:
            for info in archive.infolist():
                member = info.filename
                if member.endswith(".npy"):
                    member = member[: -len(".npy")]
                self._members[member] = None
                if info.compress_type != zipfile.ZIP_STORED:
                    continue
                f.seek(info.header_offset)
                header = f.read(30)
                if len(header) != 30 or header[:4] != b"PK\x03\x04":
                    continue
                name_len, extra_len = struct.unpack("<HH", header[26:30])
                f.seek(info.header_offset + 30 + name_len + extra_len)
                try:
                    shape, fortran_order, dtype = _read_npy_header(f)
                except (ValueError, OSError):
                    continue
                if dtype.hasobject:
                    continue  # would need pickle; let np.load reject it
                self._members[member] = _NpyMember(
                    offset=f.tell(),
                    shape=tuple(int(n) for n in shape),
                    dtype=dtype,
                    fortran_order=bool(fortran_order),
                )

    def _load_member(self, member: str) -> np.ndarray:
        """The raw array of one member: memmap if possible, else eager."""
        entry = self._members.get(member)
        if entry is not None:
            if 0 in entry.shape:
                # mmap cannot map zero bytes; an empty array is free anyway.
                return np.zeros(entry.shape, dtype=entry.dtype)
            return np.memmap(
                self.path,
                mode="r",
                dtype=entry.dtype,
                shape=entry.shape,
                offset=entry.offset,
                order="F" if entry.fortran_order else "C",
            )
        with np.load(self.path, allow_pickle=False) as archive:
            return archive[member]

    # -- payload access ----------------------------------------------------
    def rate(self, channel_id: str) -> float:
        """Sample rate of one channel (read at open; no data touched)."""
        return self._rates[channel_id]

    def signal(self, channel_id: str) -> Signal:
        """One channel as a (memmap-backed where possible) ``Signal``."""
        if channel_id not in self._rates:
            raise KeyError(
                f"channel {channel_id!r} not in payload "
                f"{self.path} (has {list(self.channels)})"
            )
        cached = self._signals.get(channel_id)
        if cached is None:
            cached = Signal(
                self._load_member(f"{channel_id}::data"),
                self._rates[channel_id],
                channel_names=self._names[channel_id],
            )
            self._signals[channel_id] = cached
        return cached

    def signals(
        self, channels: Optional[Sequence[str]] = None
    ) -> Dict[str, Signal]:
        """Channel dict in saved order (all channels by default)."""
        wanted = tuple(channels) if channels is not None else self.channels
        return {channel_id: self.signal(channel_id) for channel_id in wanted}

    def materialize(self):
        """Decode everything into plain arrays: the eager ``RunPayload``."""
        signals: Dict[str, Signal] = {}
        for channel_id in self.channels:
            lazy = self.signal(channel_id)
            signals[channel_id] = Signal(
                np.array(lazy.data, dtype=np.float64),
                lazy.sample_rate,
                channel_names=lazy.channel_names,
            )
        return signals, self.layer_times, self.duration

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Drop the handle's signal cache (idempotent).

        Signals already handed out remain usable: each memmap keeps its
        own mapping alive until the array itself is collected.
        """
        self._signals.clear()

    def __enter__(self) -> "LazyRunPayload":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"LazyRunPayload({str(self.path)!r}, "
            f"channels={list(self.channels)})"
        )


# ---------------------------------------------------------------------------
# Thresholds and parameters (JSON)
# ---------------------------------------------------------------------------
def save_thresholds(thresholds: Thresholds, path: PathLike) -> None:
    """Write learned critical values as human-readable JSON."""
    payload = {
        "c_c": thresholds.c_c,
        "h_c": thresholds.h_c,
        "v_c": thresholds.v_c,
        "d_c": thresholds.d_c,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_thresholds(path: PathLike) -> Thresholds:
    payload = json.loads(Path(path).read_text())
    return Thresholds(
        c_c=float(payload["c_c"]),
        h_c=float(payload["h_c"]),
        v_c=float(payload["v_c"]),
        d_c=float(payload.get("d_c", float("inf"))),
    )


def save_dwm_params(params: DwmParams, path: PathLike) -> None:
    """Write DWM parameters (Table IV style) as JSON."""
    payload = {
        "t_win": params.t_win,
        "t_hop": params.t_hop,
        "t_ext": params.t_ext,
        "t_sigma": params.t_sigma,
        "eta": params.eta,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_dwm_params(path: PathLike) -> DwmParams:
    payload = json.loads(Path(path).read_text())
    return DwmParams(
        t_win=float(payload["t_win"]),
        t_hop=float(payload["t_hop"]),
        t_ext=float(payload["t_ext"]),
        t_sigma=float(payload["t_sigma"]),
        eta=float(payload.get("eta", 0.1)),
    )
