"""Persistence: save/load signals, thresholds, and DWM parameters.

A deployed IDS records its reference signals once, learns its thresholds
once, and then reloads both on every print.  Signals go to ``.npz`` (data +
rate + channel names); the small configuration objects go to JSON so they
stay human-auditable — an operator should be able to read the thresholds
that will stop their printer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from .core.discriminator import Thresholds
from .signals.signal import Signal
from .sync.dwm import DwmParams

__all__ = [
    "save_signal",
    "load_signal",
    "save_signals",
    "load_signals",
    "save_run_payload",
    "load_run_payload",
    "save_thresholds",
    "load_thresholds",
    "save_dwm_params",
    "load_dwm_params",
]

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Signals
# ---------------------------------------------------------------------------
def save_signal(signal: Signal, path: PathLike) -> None:
    """Write one signal to a ``.npz`` file."""
    path = Path(path)
    payload = {
        "data": signal.data,
        "sample_rate": np.asarray(signal.sample_rate),
    }
    if signal.channel_names is not None:
        payload["channel_names"] = np.asarray(signal.channel_names)
    np.savez_compressed(path, **payload)


def load_signal(path: PathLike) -> Signal:
    """Read a signal written by :func:`save_signal`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        names = None
        if "channel_names" in archive:
            names = [str(n) for n in archive["channel_names"]]
        return Signal(
            archive["data"],
            float(archive["sample_rate"]),
            channel_names=names,
        )


def save_signals(signals: Dict[str, Signal], directory: PathLike) -> None:
    """Write one ``<channel>.npz`` per channel into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for channel_id, signal in signals.items():
        save_signal(signal, directory / f"{channel_id}.npz")


def load_signals(directory: PathLike) -> Dict[str, Signal]:
    """Read every ``*.npz`` in ``directory`` as a channel."""
    directory = Path(directory)
    out: Dict[str, Signal] = {}
    for path in sorted(directory.glob("*.npz")):
        out[path.stem] = load_signal(path)
    if not out:
        raise FileNotFoundError(f"no .npz signals under {directory}")
    return out


# ---------------------------------------------------------------------------
# Whole-run payloads (one .npz per simulated process; the cache's format)
# ---------------------------------------------------------------------------
def save_run_payload(
    path: PathLike,
    signals: Dict[str, Signal],
    layer_times,
    duration: float,
) -> None:
    """Write one simulated run (all channels + timing metadata) to ``.npz``.

    Channel arrays are namespaced as ``<channel>::data`` / ``::rate`` /
    ``::names`` so the whole run stays a single archive — the storage unit
    of :class:`repro.cache.RunCache`.  Stored uncompressed: the sensor
    tracks are near-incompressible noise, and zlib would dominate warm-hit
    latency.
    """
    payload = {
        "__channels": np.asarray(list(signals), dtype=str),
        "__layer_times": np.asarray(list(layer_times), dtype=np.float64),
        "__duration": np.asarray(float(duration)),
    }
    for channel_id, signal in signals.items():
        payload[f"{channel_id}::data"] = signal.data
        payload[f"{channel_id}::rate"] = np.asarray(signal.sample_rate)
        if signal.channel_names is not None:
            payload[f"{channel_id}::names"] = np.asarray(signal.channel_names)
    np.savez(Path(path), **payload)


def load_run_payload(path: PathLike):
    """Read a run written by :func:`save_run_payload`.

    Returns ``(signals, layer_times, duration)`` with ``signals`` a
    ``{channel_id: Signal}`` dict in the order it was saved.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        signals: Dict[str, Signal] = {}
        for channel_id in (str(c) for c in archive["__channels"]):
            names = None
            if f"{channel_id}::names" in archive:
                names = [str(n) for n in archive[f"{channel_id}::names"]]
            signals[channel_id] = Signal(
                archive[f"{channel_id}::data"],
                float(archive[f"{channel_id}::rate"]),
                channel_names=names,
            )
        layer_times = tuple(float(t) for t in archive["__layer_times"])
        duration = float(archive["__duration"])
    return signals, layer_times, duration


# ---------------------------------------------------------------------------
# Thresholds and parameters (JSON)
# ---------------------------------------------------------------------------
def save_thresholds(thresholds: Thresholds, path: PathLike) -> None:
    """Write learned critical values as human-readable JSON."""
    payload = {
        "c_c": thresholds.c_c,
        "h_c": thresholds.h_c,
        "v_c": thresholds.v_c,
        "d_c": thresholds.d_c,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_thresholds(path: PathLike) -> Thresholds:
    payload = json.loads(Path(path).read_text())
    return Thresholds(
        c_c=float(payload["c_c"]),
        h_c=float(payload["h_c"]),
        v_c=float(payload["v_c"]),
        d_c=float(payload.get("d_c", float("inf"))),
    )


def save_dwm_params(params: DwmParams, path: PathLike) -> None:
    """Write DWM parameters (Table IV style) as JSON."""
    payload = {
        "t_win": params.t_win,
        "t_hop": params.t_hop,
        "t_ext": params.t_ext,
        "t_sigma": params.t_sigma,
        "eta": params.eta,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_dwm_params(path: PathLike) -> DwmParams:
    payload = json.loads(Path(path).read_text())
    return DwmParams(
        t_win=float(payload["t_win"]),
        t_hop=float(payload["t_hop"]),
        t_ext=float(payload["t_ext"]),
        t_sigma=float(payload["t_sigma"]),
        eta=float(payload.get("eta", 0.1)),
    )
