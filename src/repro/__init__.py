"""NSYNC: practical side-channel intrusion detection for additive manufacturing.

A full reproduction of Liang et al., "A Practical Side-Channel Based
Intrusion Detection System for Additive Manufacturing Systems" (ICDCS 2021):
the DWM dynamic synchronizer, the NSYNC IDS framework, DTW/FastDTW
baselines, a simulated FDM printing stack (slicer, G-code firmware with time
noise, six side-channel sensors), the five attacks of Table I, five prior
IDSs, and the full evaluation harness.

Quickstart::

    from repro import (
        PrintJob, PAPER_GEAR, ULTIMAKER3, simulate_print, default_daq,
        TimeNoiseModel, NsyncIds, DwmSynchronizer, UM3_DWM_PARAMS,
    )

    job = PrintJob.slice(PAPER_GEAR)
    trace = simulate_print(job.program, ULTIMAKER3, TimeNoiseModel(), seed=0)
    signals = default_daq().acquire(trace)
    # ... build an NsyncIds around a reference signal and detect().
"""

from .signals import (
    PAPER_SPECTROGRAMS,
    Signal,
    SpectrogramConfig,
    correlation_distance,
    correlation_similarity,
    spectrogram,
    trailing_min_filter,
)
from .sync import (
    DtwSynchronizer,
    DwmParams,
    DwmSynchronizer,
    FastDtwSynchronizer,
    RM3_DWM_PARAMS,
    StreamingDwm,
    SyncResult,
    UM3_DWM_PARAMS,
    tde,
    tdeb,
)
from .core import (
    Alert,
    Comparator,
    Detection,
    Discriminator,
    NsyncIds,
    OneClassTrainer,
    SENSOR_FAULT,
    SanitizePolicy,
    StreamingNsyncIds,
    Thresholds,
)
from .printer import (
    Firmware,
    GcodeProgram,
    MachineTrace,
    NO_TIME_NOISE,
    ROSTOCK_MAX_V3,
    TimeNoiseModel,
    ULTIMAKER3,
    parse_gcode,
    simulate_print,
)
from .slicer import PAPER_GEAR, Slicer, SlicerConfig, gear_outline, slice_model
from .attacks import (
    Attack,
    InfillGridAttack,
    LayerHeightAttack,
    PrintJob,
    ScaleAttack,
    SpeedAttack,
    TABLE_I_ATTACKS,
    VoidAttack,
)
from .sensors import DataAcquisition, default_daq
from .cache import RunCache, run_cache_key
from . import obs

__version__ = "1.0.0"

__all__ = [
    "PAPER_SPECTROGRAMS",
    "Signal",
    "SpectrogramConfig",
    "correlation_distance",
    "correlation_similarity",
    "spectrogram",
    "trailing_min_filter",
    "DtwSynchronizer",
    "DwmParams",
    "DwmSynchronizer",
    "FastDtwSynchronizer",
    "RM3_DWM_PARAMS",
    "StreamingDwm",
    "SyncResult",
    "UM3_DWM_PARAMS",
    "tde",
    "tdeb",
    "Alert",
    "Comparator",
    "Detection",
    "Discriminator",
    "NsyncIds",
    "OneClassTrainer",
    "SENSOR_FAULT",
    "SanitizePolicy",
    "StreamingNsyncIds",
    "Thresholds",
    "Firmware",
    "GcodeProgram",
    "MachineTrace",
    "NO_TIME_NOISE",
    "ROSTOCK_MAX_V3",
    "TimeNoiseModel",
    "ULTIMAKER3",
    "parse_gcode",
    "simulate_print",
    "PAPER_GEAR",
    "Slicer",
    "SlicerConfig",
    "gear_outline",
    "slice_model",
    "Attack",
    "InfillGridAttack",
    "LayerHeightAttack",
    "PrintJob",
    "ScaleAttack",
    "SpeedAttack",
    "TABLE_I_ATTACKS",
    "VoidAttack",
    "DataAcquisition",
    "default_daq",
    "RunCache",
    "run_cache_key",
    "obs",
    "__version__",
]
