"""Acoustic sensors: the microphone (AUD) and the "capless microphone" (EPT).

**AUD** — stepper motors whine at a frequency proportional to their step
rate (itself proportional to joint speed), with amplitude growing with
speed; the part-cooling fan contributes broadband noise.  Two microphone
channels hear the same sources with different mixing weights (stereo AKG170
in the paper).

**EPT** — the paper collects quasi-static electric potentials by removing
the cap of a second AKG170 (after Han et al. [14]).  The raw signal is
dominated by 50/60 Hz mains hum, so the raw channel is nearly useless for
synchronization (the paper drops it), but its *spectrogram* separates the
hum into one bin and exposes the motor PWM content in others.
"""

from __future__ import annotations

import numpy as np

from ..printer.firmware import MachineTrace
from .base import Sensor, SensorConfig, resample_track

__all__ = ["Microphone", "ElectricPotentialProbe"]


class Microphone(Sensor):
    """2-channel microphone hearing motor whine + fan noise.

    Tones are synthesized by integrating instantaneous step frequency, so
    speed changes produce the authentic chirps of a real printer.  The
    ``steps_per_mm`` constant is scaled so tones stay below the (scaled)
    Nyquist rate.
    """

    channel_id = "AUD"

    def __init__(
        self,
        config: SensorConfig,
        steps_per_mm: float = 8.0,
        e_steps_per_mm: float = 40.0,
        motor_gain: float = 1.0,
        extruder_gain: float = 0.6,
        fan_gain: float = 0.3,
    ) -> None:
        super().__init__(config)
        self.steps_per_mm = steps_per_mm
        self.e_steps_per_mm = e_steps_per_mm
        self.motor_gain = motor_gain
        self.extruder_gain = extruder_gain
        self.fan_gain = fan_gain

    def physical_track(
        self, trace: MachineTrace, rng: np.random.Generator
    ) -> np.ndarray:
        fs = self.config.sample_rate
        joint_vel = resample_track(trace.joint_velocity, trace, fs)  # (n, J)
        extrusion = resample_track(trace.extrusion_rate, trace, fs)
        fan = resample_track(trace.fan, trace, fs)
        n, n_joints = joint_vel.shape
        nyquist = fs / 2.0

        left = np.zeros(n)
        right = np.zeros(n)

        def add_motor(speed: np.ndarray, steps: float, gain: float, k: int) -> None:
            freq = np.clip(steps * speed, 0.0, 0.9 * nyquist)
            phase = 2.0 * np.pi * np.cumsum(freq) / fs
            tone = gain * np.sqrt(speed) * np.sin(phase + 0.5 * k)
            # Each motor sits at a different distance from each capsule.
            left[:] += tone * (0.6 + 0.4 * np.cos(1.1 * k))
            right[:] += tone * (0.6 + 0.4 * np.sin(0.9 * k + 0.4))

        for k in range(n_joints):
            add_motor(np.abs(joint_vel[:, k]), self.steps_per_mm,
                      self.motor_gain, k)
        # The extruder motor whines too — at a rate set by the volumetric
        # flow, which is what distinguishes a 0.3 mm layer from a 0.2 mm one.
        add_motor(np.abs(extrusion), self.e_steps_per_mm,
                  self.extruder_gain, n_joints)

        fan_noise = self.fan_gain * fan * rng.standard_normal(n)
        return np.column_stack([left + fan_noise, right + 0.8 * fan_noise])


class ElectricPotentialProbe(Sensor):
    """1-channel electric-potential probe: mains hum + weak PWM coupling.

    The hum amplitude dwarfs the motor-coupled component by design
    (``hum_gain`` is an order of magnitude above ``pwm_gain``), reproducing
    the paper's finding that raw EPT is unusable while its spectrogram works.
    """

    channel_id = "EPT"

    def __init__(
        self,
        config: SensorConfig,
        mains_freq: float = 60.0,
        hum_gain: float = 60.0,
        pwm_gain: float = 0.1,
        pwm_freq: float = 31.0,
    ) -> None:
        super().__init__(config)
        self.mains_freq = mains_freq
        self.hum_gain = hum_gain
        self.pwm_gain = pwm_gain
        self.pwm_freq = pwm_freq

    def physical_track(
        self, trace: MachineTrace, rng: np.random.Generator
    ) -> np.ndarray:
        fs = self.config.sample_rate
        joint_vel = resample_track(trace.joint_velocity, trace, fs)
        n = joint_vel.shape[0]
        t = np.arange(n) / fs

        hum_phase = rng.uniform(0.0, 2.0 * np.pi)
        hum = self.hum_gain * np.sin(2.0 * np.pi * self.mains_freq * t + hum_phase)
        # Weak second harmonic, as real mains pickup has.
        hum += 0.15 * self.hum_gain * np.sin(
            4.0 * np.pi * self.mains_freq * t + 2.0 * hum_phase
        )

        activity = np.abs(joint_vel).sum(axis=1)
        pwm = self.pwm_gain * activity * np.sin(2.0 * np.pi * self.pwm_freq * t)
        return (hum + pwm)[:, np.newaxis]
