"""Sensor base machinery.

Every simulated sensor turns a :class:`~repro.printer.firmware.MachineTrace`
into a :class:`~repro.signals.signal.Signal` at the sensor's own sampling
rate, by (1) deriving a physical quantity from the machine state, (2) adding
transducer noise, and (3) passing the result through the DAQ model (gain
drift + quantization).  Because all sensors read the same trace, all side
channels of one run share one noisy timeline — the property behind the
paper's Fig. 10 consistency result.

Sample rates are scaled down from Table II (the paper records audio at
48 kHz; simulating minutes of that would dominate runtime without changing
any algorithmic behaviour).  The scaling is uniform and documented in
DESIGN.md.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..printer.firmware import MachineTrace
from ..signals.signal import Signal

__all__ = ["SensorConfig", "Sensor", "resample_track"]


@dataclass(frozen=True)
class SensorConfig:
    """Acquisition parameters shared by all sensors.

    ``sample_rate`` (Hz) and ``bits`` mirror Table II (scaled);
    ``noise_level`` is the additive transducer noise as a fraction of the
    signal's RMS; ``gain_sigma`` is the log-std of the per-run gain drift
    (the reason NSYNC avoids gain-sensitive distance metrics).
    """

    sample_rate: float
    bits: int = 16
    noise_level: float = 0.02
    gain_sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError(f"sample_rate must be positive, got {self.sample_rate}")
        if not 2 <= self.bits <= 32:
            raise ValueError(f"bits must be in [2, 32], got {self.bits}")
        if self.noise_level < 0:
            raise ValueError(f"noise_level must be non-negative, got {self.noise_level}")
        if self.gain_sigma < 0:
            raise ValueError(f"gain_sigma must be non-negative, got {self.gain_sigma}")


def resample_track(
    values: np.ndarray, trace: MachineTrace, target_rate: float
) -> np.ndarray:
    """Linearly resample a per-trace-sample track onto a sensor's grid.

    ``values`` is ``(n,)`` or ``(n, c)`` aligned with ``trace.times``.
    Returns the same track sampled at ``target_rate`` over the trace's
    duration.
    """
    values = np.asarray(values, dtype=np.float64)
    squeeze = values.ndim == 1
    if squeeze:
        values = values[:, np.newaxis]
    n_out = max(2, int(np.floor(trace.duration * target_rate)))
    t_out = np.arange(n_out) / target_rate
    out = np.column_stack(
        [
            np.interp(t_out, trace.times, values[:, c])
            for c in range(values.shape[1])
        ]
    )
    return out[:, 0] if squeeze else out


class Sensor(abc.ABC):
    """Base class: derive a physical track, then add noise and digitize."""

    #: Side-channel ID matching Table II (e.g. ``"ACC"``).
    channel_id: str = "?"

    def __init__(self, config: SensorConfig) -> None:
        self.config = config

    @abc.abstractmethod
    def physical_track(
        self, trace: MachineTrace, rng: np.random.Generator
    ) -> np.ndarray:
        """The noiseless sensor output, ``(n, channels)`` at the sensor rate."""

    def sense(self, trace: MachineTrace, rng: np.random.Generator) -> Signal:
        """Full acquisition chain: physics -> noise -> gain -> quantization.

        Noise and quantization are scaled *per channel* (each channel of a
        real DAQ has its own range and gain), so a large DC offset on one
        channel — gravity on the Z accelerometer, the earth field on the
        magnetometer — does not drown the information on quiet channels.
        """
        clean = np.atleast_2d(self.physical_track(trace, rng))
        if clean.shape[0] == 1 and clean.shape[1] > 4:
            clean = clean.T

        cfg = self.config
        # Per-channel AC amplitude (mean-removed std), floored so an
        # all-constant channel still gets a tiny noise floor.
        std = clean.std(axis=0, keepdims=True)
        std = np.maximum(std, 1e-3 * np.maximum(np.abs(clean).max(), 1.0))
        noisy = clean + cfg.noise_level * std * rng.standard_normal(clean.shape)

        # Per-run multiplicative gain drift (microphone distance, ADC gain).
        gain = float(np.exp(cfg.gain_sigma * rng.standard_normal()))
        noisy = noisy * gain

        digitized = self._quantize(noisy, gain * std[0])
        return Signal(digitized, cfg.sample_rate)

    def _quantize(self, values: np.ndarray, channel_std: np.ndarray) -> np.ndarray:
        """Mid-rise quantization to the configured bit depth.

        Each channel's full scale is 4x its AC amplitude around its mean (a
        headroom a technician would configure per channel), so quantization
        noise tracks the channel's dynamics.
        """
        levels = 2 ** (self.config.bits - 1)
        step = 4.0 * channel_std / levels  # (channels,)
        mean = values.mean(axis=0, keepdims=True)
        return mean + np.round((values - mean) / step) * step
