"""Weakly-correlated sensors: die temperature (TMP) and AC power (PWR).

The paper measures the IMU's die temperature and the printer's total AC
current, and finds both *weakly correlated with the printer state*: their
``h_disp`` comes out noise-like, and both channels are dropped after
Fig. 10.  Our models reproduce that weakness on purpose:

* TMP follows ambient warming plus a random thermal drift — almost no
  motion signature.
* PWR is dominated by the heater's thermostat (bang-bang) duty cycle whose
  phase is independent of the toolpath; the motor contribution is small.
"""

from __future__ import annotations

import numpy as np

from ..printer.firmware import MachineTrace
from .base import Sensor, SensorConfig, resample_track

__all__ = ["DieThermometer", "PowerSensor"]


class DieThermometer(Sensor):
    """1-channel IMU die temperature: slow drift + faint hotend coupling."""

    channel_id = "TMP"

    def __init__(
        self,
        config: SensorConfig,
        hotend_coupling: float = 0.02,
        self_heating: float = 3.0,
        drift_scale: float = 0.5,
    ) -> None:
        super().__init__(config)
        self.hotend_coupling = hotend_coupling
        self.self_heating = self_heating
        self.drift_scale = drift_scale

    def physical_track(
        self, trace: MachineTrace, rng: np.random.Generator
    ) -> np.ndarray:
        fs = self.config.sample_rate
        hotend = resample_track(trace.hotend_temp, trace, fs)
        n = hotend.shape[0]
        t = np.arange(n) / fs

        # Electronics warm up over the first minute of a run.
        warmup = self.self_heating * (1.0 - np.exp(-t / 60.0))
        # Slow random thermal drift (integrated noise, lightly damped).
        steps = rng.standard_normal(n) / np.sqrt(fs)
        drift = self.drift_scale * np.cumsum(steps) * np.exp(-t / (t[-1] + 1.0))
        temp = 25.0 + warmup + self.hotend_coupling * hotend + drift
        return temp[:, np.newaxis]


class PowerSensor(Sensor):
    """1-channel AC current clamp (SCT013) on the printer's supply cord.

    Total current = baseline electronics + thermostat-driven heater current
    (a bang-bang cycle whose period/phase is randomized per run, making it
    useless for synchronization) + a small motion-correlated motor term +
    fan.
    """

    channel_id = "PWR"

    def __init__(
        self,
        config: SensorConfig,
        base_current: float = 0.2,
        heater_current: float = 2.5,
        motor_gain: float = 0.002,
        fan_current: float = 0.1,
        thermostat_period: float = 8.0,
    ) -> None:
        super().__init__(config)
        self.base_current = base_current
        self.heater_current = heater_current
        self.motor_gain = motor_gain
        self.fan_current = fan_current
        self.thermostat_period = thermostat_period

    def physical_track(
        self, trace: MachineTrace, rng: np.random.Generator
    ) -> np.ndarray:
        fs = self.config.sample_rate
        joint_vel = resample_track(trace.joint_velocity, trace, fs)
        extrusion = resample_track(trace.extrusion_rate, trace, fs)
        hotend = resample_track(trace.hotend_temp, trace, fs)
        fan = resample_track(trace.fan, trace, fs)
        n = joint_vel.shape[0]
        t = np.arange(n) / fs

        # Bang-bang heater: on-fraction follows heating demand, but the
        # cycle phase and period drift randomly per run.
        demand = np.clip((210.0 - hotend) / 185.0, 0.05, 1.0)
        period = self.thermostat_period * (1.0 + 0.2 * rng.standard_normal())
        period = max(period, 1.0)
        phase = rng.uniform(0.0, 1.0)
        cycle = ((t / period + phase) % 1.0) < demand
        heater = self.heater_current * cycle.astype(np.float64)

        motors = self.motor_gain * (
            np.abs(joint_vel).sum(axis=1) + np.abs(extrusion)
        )
        current = self.base_current + heater + motors + self.fan_current * fan
        return current[:, np.newaxis]
