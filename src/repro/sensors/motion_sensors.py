"""Motion-driven sensors: accelerometer/gyro (ACC) and magnetometer (MAG).

Both model the MPU9250 IMU the paper mounts on the printhead.  The
accelerometer feels the tool acceleration plus gravity plus the structural
ringing excited at every acceleration transient; the magnetometer picks up
the stray fields of the stepper motors, whose currents follow the joint
velocities, buried under the earth field and substantial noise — which is
why the paper finds MAG's ``h_disp`` noisy but correctly shaped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..printer.firmware import MachineTrace
from .base import Sensor, SensorConfig, resample_track

__all__ = ["Accelerometer", "Magnetometer"]


class Accelerometer(Sensor):
    """6-channel IMU: linear acceleration (x, y, z) + angular-rate proxy.

    The paper's ACC channel has 6 channels at 4 kHz; we keep 6 channels
    (3 accel + 3 "gyro") at the scaled rate.  Structural ringing is modelled
    as an exponentially decaying oscillation injected at each jerk event,
    with amplitude proportional to the acceleration step — the dominant
    high-frequency content a printhead IMU actually sees.
    """

    channel_id = "ACC"

    def __init__(
        self,
        config: SensorConfig,
        ringing_freq: float = 55.0,
        ringing_decay: float = 18.0,
        ringing_gain: float = 0.15,
        gravity: float = 9810.0,
        mechanical_smoothing: float = 0.03,
    ) -> None:
        super().__init__(config)
        self.ringing_freq = ringing_freq
        self.ringing_decay = ringing_decay
        self.ringing_gain = ringing_gain
        self.gravity = gravity  # mm/s^2
        # The printhead assembly is a mass on compliant mounts: it acts as a
        # mechanical low-pass with a time constant of a few tens of ms.
        self.mechanical_smoothing = mechanical_smoothing  # seconds (Gaussian)

    def physical_track(
        self, trace: MachineTrace, rng: np.random.Generator
    ) -> np.ndarray:
        from scipy.ndimage import gaussian_filter1d

        fs = self.config.sample_rate
        accel = resample_track(trace.acceleration, trace, fs)  # (n, 3)
        if self.mechanical_smoothing > 0:
            accel = gaussian_filter1d(
                accel, self.mechanical_smoothing * fs, axis=0
            )
        n = accel.shape[0]
        t = np.arange(n) / fs

        # Structural ringing: convolve |jerk| with a decaying sinusoid.
        jerk = np.abs(np.diff(accel, axis=0, prepend=accel[:1, :]))
        kernel_len = int(fs * min(0.5, 5.0 / self.ringing_decay))
        tk = np.arange(max(kernel_len, 2)) / fs
        kernel = np.exp(-self.ringing_decay * tk) * np.sin(
            2.0 * np.pi * self.ringing_freq * tk
        )
        ringing = np.column_stack(
            [
                np.convolve(jerk[:, c], kernel, mode="full")[:n]
                for c in range(3)
            ]
        )
        linear = accel + self.ringing_gain * ringing
        linear[:, 2] += self.gravity

        # Angular-rate proxy: the printhead pitches/rolls with horizontal
        # acceleration and yaws with differential XY motion.
        gyro = np.column_stack(
            [
                0.002 * linear[:, 1],
                -0.002 * linear[:, 0],
                0.001 * (linear[:, 0] - linear[:, 1]),
            ]
        )
        return np.column_stack([linear, gyro])


@dataclass
class _MotorCoupling:
    """Geometric coupling of one motor's stray field into the IMU axes."""

    weights: np.ndarray  # (3,)


class Magnetometer(Sensor):
    """3-channel magnetometer dominated by earth field + motor stray fields.

    Motor current magnitude follows ``|joint velocity|`` (plus a holding
    current), and each motor couples into the three axes with fixed
    geometric weights.  The noise level is deliberately high: Table/Fig. 10
    show MAG's ``h_disp`` is noisy yet overall correct.
    """

    channel_id = "MAG"

    def __init__(
        self,
        config: SensorConfig,
        earth_field: float = 45.0,
        motor_gain: float = 0.4,
        holding_current: float = 0.3,
    ) -> None:
        super().__init__(config)
        self.earth_field = earth_field
        self.motor_gain = motor_gain
        self.holding_current = holding_current

    def physical_track(
        self, trace: MachineTrace, rng: np.random.Generator
    ) -> np.ndarray:
        fs = self.config.sample_rate
        joint_vel = resample_track(trace.joint_velocity, trace, fs)
        extrusion = resample_track(trace.extrusion_rate, trace, fs)
        # The extruder motor sits on the printhead right next to the IMU, so
        # its stray field is part of what the magnetometer picks up.
        all_motors = np.column_stack([joint_vel, extrusion])
        currents = self.holding_current + np.abs(all_motors)  # (n, J + 1)

        n_joints = currents.shape[1]
        # Fixed (deterministic) coupling geometry per joint.
        couplings = np.array(
            [
                [np.cos(0.7 * k + 0.3), np.sin(1.3 * k + 1.1), np.cos(2.1 * k)]
                for k in range(n_joints)
            ]
        )
        field = self.motor_gain * currents @ couplings  # (n, 3)
        field[:, 0] += self.earth_field
        field[:, 2] += 0.6 * self.earth_field
        return field
