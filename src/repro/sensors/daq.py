"""The data-acquisition system: all six side channels from one trace.

The paper built a DAQ capable of collecting six side-channel types
(Table II).  :class:`DataAcquisition` mirrors it: point it at a machine
trace and it returns one :class:`~repro.signals.signal.Signal` per channel
ID.  Rates/bit depths follow Table II, uniformly scaled down (documented in
DESIGN.md) so simulated prints stay laptop-sized; pass ``rate_scale=1.0``
to run at full paper rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from ..printer.firmware import MachineTrace
from ..signals.signal import Signal
from .acoustic import ElectricPotentialProbe, Microphone
from .base import Sensor, SensorConfig
from .motion_sensors import Accelerometer, Magnetometer
from .thermal_power import DieThermometer, PowerSensor

__all__ = ["PAPER_CHANNELS", "DataAcquisition", "default_daq"]

#: Table II of the paper: (sample rate Hz, channels, bits).
PAPER_CHANNELS = {
    "ACC": (4000.0, 6, 16),
    "TMP": (4000.0, 1, 16),
    "MAG": (100.0, 3, 16),
    "AUD": (48000.0, 2, 24),
    "EPT": (96000.0, 1, 24),
    "PWR": (12000.0, 1, 24),
}

#: Default down-scaling of the Table II rates for simulation.  MAG is
#: already slow and stays at its native 100 Hz.
_SCALED_RATES = {
    "ACC": 400.0,
    "TMP": 100.0,
    "MAG": 100.0,
    "AUD": 2000.0,
    "EPT": 2000.0,
    "PWR": 500.0,
}


@dataclass
class DataAcquisition:
    """A configured set of sensors observing the same printing process."""

    sensors: Dict[str, Sensor]

    @property
    def channel_ids(self) -> tuple:
        return tuple(self.sensors)

    def acquire(
        self,
        trace: MachineTrace,
        rng: Optional[np.random.Generator] = None,
        channels: Optional[Iterable[str]] = None,
    ) -> Dict[str, Signal]:
        """Record every (or the selected) side channel of one run.

        Each channel gets an independent generator derived from ``rng`` and
        the channel name, so the recorded data for channel X is identical
        whether or not other channels were acquired alongside it.
        """
        rng = rng if rng is not None else np.random.default_rng()
        base_seed = int(rng.integers(0, 2**63 - 1))
        wanted = tuple(channels) if channels is not None else self.channel_ids
        out: Dict[str, Signal] = {}
        for channel_id in wanted:
            try:
                sensor = self.sensors[channel_id]
            except KeyError:
                raise KeyError(
                    f"no sensor for channel {channel_id!r}; "
                    f"available: {sorted(self.sensors)}"
                ) from None
            channel_tag = sum(ord(c) * 257**i for i, c in enumerate(channel_id))
            channel_rng = np.random.default_rng([base_seed, channel_tag])
            out[channel_id] = sensor.sense(trace, channel_rng)
        return out


def default_daq(
    rate_scale: Optional[float] = None,
    rates: Optional[Dict[str, float]] = None,
) -> DataAcquisition:
    """Build the six-sensor DAQ of Table II.

    By default the scaled simulation rates are used.  ``rate_scale=1.0``
    restores the paper's native rates; ``rates`` overrides individual
    channels.
    """
    if rates is None:
        if rate_scale is None:
            rates = dict(_SCALED_RATES)
        else:
            rates = {
                cid: spec[0] * rate_scale for cid, spec in PAPER_CHANNELS.items()
            }
    bits = {cid: spec[2] for cid, spec in PAPER_CHANNELS.items()}

    def cfg(cid: str, **overrides) -> SensorConfig:
        params = dict(sample_rate=rates[cid], bits=bits[cid])
        params.update(overrides)
        return SensorConfig(**params)

    sensors: Dict[str, Sensor] = {
        "ACC": Accelerometer(cfg("ACC", noise_level=0.02)),
        "TMP": DieThermometer(cfg("TMP", noise_level=0.01)),
        "MAG": Magnetometer(cfg("MAG", noise_level=0.25)),
        "AUD": Microphone(cfg("AUD", noise_level=0.05)),
        "EPT": ElectricPotentialProbe(cfg("EPT", noise_level=0.05)),
        "PWR": PowerSensor(cfg("PWR", noise_level=0.03)),
    }
    return DataAcquisition(sensors)
