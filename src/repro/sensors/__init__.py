"""Simulated side-channel sensors and the data-acquisition system."""

from .base import Sensor, SensorConfig, resample_track
from .motion_sensors import Accelerometer, Magnetometer
from .acoustic import ElectricPotentialProbe, Microphone
from .thermal_power import DieThermometer, PowerSensor
from .daq import DataAcquisition, PAPER_CHANNELS, default_daq

__all__ = [
    "Sensor",
    "SensorConfig",
    "resample_track",
    "Accelerometer",
    "Magnetometer",
    "ElectricPotentialProbe",
    "Microphone",
    "DieThermometer",
    "PowerSensor",
    "DataAcquisition",
    "PAPER_CHANNELS",
    "default_daq",
]
